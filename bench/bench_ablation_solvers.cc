// E19 — ablation: JSP solver quality/time trade-offs, iterated over the
// SolverRegistry (every registered solver is benched for free) plus
// request-level SA-variant overrides, under the paper's default instance
// distribution. Later sections: incremental vs from-scratch evaluation,
// PlanContext reuse vs cold per-call setup, SolveMany request throughput,
// the parallel/nested/batched-neighbourhood ablations.

#include <cstdint>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/solve.h"
#include "bench_util.h"
#include "core/annealing.h"
#include "core/branch_bound.h"
#include "core/budget_table.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "util/scheduler.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace jury {
namespace {

void Run() {
  const int reps = static_cast<int>(bench::Reps(50));
  bench::PrintHeader(
      "Ablation — JSP solvers via the SolverRegistry (N = 12, B = 0.5, "
      "paper's distributions)",
      "Mean JQ gap to the exhaustive optimum and mean solve time over " +
          std::to_string(reps) + " instances; every row is a SolveRequest "
          "against a per-pool PlanContext.");

  // The solver axis iterates the registry — a newly registered solver
  // gets a row without touching this file — plus request-level tuning
  // variants of the SA row, expressed as options overrides.
  struct Config {
    std::string label;
    api::SolveRequest request;
  };
  std::vector<Config> configs;
  for (const std::string& name : api::RegisteredSolverNames()) {
    Config config;
    config.label = name;
    config.request.solver = name;
    configs.push_back(std::move(config));
  }
  {
    Config best{"annealing + best-seen", {}};
    best.request.solver = "annealing";
    best.request.tuning.annealing.return_best_seen = true;
    configs.push_back(best);
    Config removals{"annealing + removals (ext)", {}};
    removals.request.solver = "annealing";
    removals.request.tuning.annealing.return_best_seen = true;
    removals.request.tuning.annealing.removal_probability = 0.25;
    configs.push_back(removals);
    Config restarts{"annealing x3 restarts", {}};
    restarts.request.solver = "annealing";
    restarts.request.tuning.annealing.num_restarts = 3;
    configs.push_back(restarts);
  }

  struct Row {
    OnlineStats gap;
    OnlineStats time;
  };
  std::vector<Row> rows(configs.size());

  Rng rng(65537);
  for (int rep = 0; rep < reps; ++rep) {
    Rng pool_rng = rng.Fork();
    auto context =
        api::PoolPlanContext::Plan(bench::PaperPool(&pool_rng, 12, 0.7))
            .value();
    // Reference optimum for this pool, through the same API path.
    api::SolveRequest reference;
    reference.solver = "exhaustive";
    reference.budget = 0.5;
    reference.alpha = 0.5;
    const double optimal_jq =
        context.Solve(reference).value().solution.jq;
    for (std::size_t c = 0; c < configs.size(); ++c) {
      api::SolveRequest request = configs[c].request;
      request.budget = 0.5;
      request.alpha = 0.5;
      request.rng_seed = 9000 + static_cast<std::uint64_t>(rep);
      const auto report = context.Solve(request).value();
      rows[c].gap.Add(optimal_jq - report.solution.jq);
      rows[c].time.Add(report.wall_seconds);
    }
  }

  Table table({"solver (registry)", "mean JQ gap", "max gap",
               "mean time (s)"});
  for (std::size_t c = 0; c < configs.size(); ++c) {
    table.AddRow({configs[c].label, FormatPercent(rows[c].gap.mean(), 3),
                  FormatPercent(rows[c].gap.max(), 3),
                  Format(rows[c].time.mean(), 6)});
  }
  std::cout << table.ToString()
            << "Takeaway: SA trades a tiny quality gap for exponential time "
               "savings; best-seen dominates final-state at equal cost; "
               "greedies are fast but can lose several percent. (The "
               "annealing row's gap is negative when its BV/bucket search "
               "beats the coarse-grid reference estimate; the mvjs row "
               "reports exact-MV quality, so its gap to the BV optimum is "
               "the Fig. 6 system comparison, not a solver deficiency.)\n";
}

/// PlanContext-reuse ablation: the same request stream answered by cold
/// per-call setup (a fresh JspInstance copy + pool validation + columnar
/// view build inside every legacy free-function call) vs a long-lived
/// `api::PoolPlanContext` (validation and view hoisted into `Plan`, the
/// instance leased from the arena). Juries are asserted identical — the
/// planned path is the same solver code — so only setup cost moves.
int RunPlanContextReuse(bench::ThreadScalingReport* report) {
  struct Workload {
    std::string solver;
    int n;
    std::size_t requests;
  };
  const std::vector<Workload> workloads = {
      {"greedy-quality", 200,
       static_cast<std::size_t>(bench::Reps(1000))},
      {"greedy-mg", 120, static_cast<std::size_t>(bench::Reps(200))},
  };
  bench::PrintHeader(
      "Ablation — PlanContext reuse vs cold per-call setup",
      "Repeated requests (varying budgets) on one pool: legacy free "
      "function per call vs one planned context; identical juries.");

  Table table({"solver", "N", "requests", "secs (cold)", "secs (reused)",
               "speedup", "instances created"});
  int violations = 0;
  Rng rng(881188);
  for (const Workload& workload : workloads) {
    Rng pool_rng = rng.Fork();
    const std::vector<Worker> pool =
        bench::PaperPool(&pool_rng, workload.n, 0.7);
    std::vector<double> budgets(workload.requests);
    for (std::size_t i = 0; i < workload.requests; ++i) {
      budgets[i] = 0.5 + 0.001 * static_cast<double>(i % 100);
    }

    // Cold path: per-request instance copy + validation + view build,
    // which is exactly what every legacy call site pays.
    const BucketBvObjective objective;
    std::vector<std::vector<std::size_t>> cold_juries;
    Timer t_cold;
    for (std::size_t i = 0; i < workload.requests; ++i) {
      JspInstance instance;
      instance.candidates = pool;
      instance.budget = budgets[i];
      instance.alpha = 0.5;
      const auto solution =
          workload.solver == "greedy-quality"
              ? SolveGreedyByQuality(instance, objective).value()
              : SolveGreedyMarginalGain(instance, objective).value();
      cold_juries.push_back(solution.selected);
    }
    const double cold_secs = t_cold.ElapsedSeconds();

    // Reused path: plan once, stream requests.
    auto context = api::PoolPlanContext::Plan(pool).value();
    Timer t_reused;
    for (std::size_t i = 0; i < workload.requests; ++i) {
      api::SolveRequest request;
      request.solver = workload.solver;
      request.budget = budgets[i];
      request.alpha = 0.5;
      const auto solve_report = context.Solve(request).value();
      if (solve_report.solution.selected != cold_juries[i]) {
        ++violations;
        std::cout << "DETERMINISM VIOLATION: " << workload.solver
                  << " request " << i << " differs between cold and "
                  << "reused paths\n";
      }
    }
    const double reused_secs = t_reused.ElapsedSeconds();

    table.AddRow({workload.solver, std::to_string(workload.n),
                  std::to_string(workload.requests), Format(cold_secs, 4),
                  Format(reused_secs, 4),
                  Format(reused_secs > 0.0 ? cold_secs / reused_secs : 0.0,
                         2) +
                      "x",
                  std::to_string(context.instances_created())});
    report->AddPlanContextReuse(workload.solver, workload.n,
                                workload.requests, cold_secs, reused_secs,
                                context.instances_created());
  }
  std::cout << table.ToString()
            << "Takeaway: a pool is planned once and queried many times — "
               "the serving shape. The arena's instance count stays at the "
               "solve concurrency (1 here), not the request count, and the "
               "per-request win is largest for the cheap solvers where "
               "validation + view build rivals the solve itself.\n";
  return violations;
}

/// SolveMany throughput: one planned pool answering a mixed batch of
/// requests (different solvers, budgets, priors, seeds), serial Solve
/// loop vs `SolveMany` fanned across the scheduler — then the same batch
/// again with cross-request move-scan fusion on (the flat-combining
/// broker coalescing every request's batched kernel flushes). Report i is
/// asserted bit-identical to its serial solve at every thread count, in
/// both modes.
int RunSolveManyThroughput(bench::ThreadScalingReport* report) {
  const int n = 60;
  const std::size_t batch = static_cast<std::size_t>(bench::Reps(32));
  bench::PrintHeader(
      "Ablation — SolveMany request throughput",
      "Mixed batch of " + std::to_string(batch) +
          " requests (annealing / greedy-mg / greedy-quality / odd-top-k) "
          "on one N = 60 pool; juries identical across thread counts.");

  Rng rng(969696);
  Rng pool_rng = rng.Fork();
  auto context =
      api::PoolPlanContext::Plan(bench::PaperPool(&pool_rng, n, 0.7))
          .value();
  const std::vector<std::string> solvers = {"annealing", "greedy-mg",
                                            "greedy-quality", "odd-top-k"};
  std::vector<api::SolveRequest> requests;
  for (std::size_t i = 0; i < batch; ++i) {
    api::SolveRequest request;
    request.solver = solvers[i % solvers.size()];
    request.budget = 0.6 + 0.2 * static_cast<double>(i % 4);
    request.alpha = i % 2 == 0 ? 0.5 : 0.4;
    request.rng_seed = 4000 + i;
    requests.push_back(std::move(request));
  }

  std::vector<std::vector<std::size_t>> reference;
  Timer t_serial;
  for (const api::SolveRequest& request : requests) {
    reference.push_back(context.Solve(request).value().solution.selected);
  }
  const double serial_secs = t_serial.ElapsedSeconds();

  Table table({"mode", "threads", "secs", "requests/s", "identical"});
  table.AddRow({"serial Solve loop", "1", Format(serial_secs, 4),
                Format(static_cast<double>(batch) / serial_secs, 1), "ref"});
  int violations = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    Timer t_batch;
    const auto reports = context.SolveMany(requests, threads).value();
    const double secs = t_batch.ElapsedSeconds();
    bool identical = true;
    for (std::size_t i = 0; i < batch; ++i) {
      if (reports[i].solution.selected != reference[i]) {
        identical = false;
        ++violations;
        std::cout << "DETERMINISM VIOLATION: SolveMany request " << i
                  << " at " << threads << " threads\n";
      }
    }
    table.AddRow({"SolveMany", std::to_string(threads), Format(secs, 4),
                  Format(static_cast<double>(batch) / secs, 1),
                  identical ? "yes" : "NO"});
    report->AddSolveMany(n, batch, threads, secs);
  }
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    api::SolveManyOptions options;
    options.num_threads = threads;
    options.fuse_move_scans = true;
    api::FusedScanStats stats;
    options.fusion_stats = &stats;
    Timer t_batch;
    const auto reports = context.SolveMany(requests, options).value();
    const double secs = t_batch.ElapsedSeconds();
    bool identical = true;
    for (std::size_t i = 0; i < batch; ++i) {
      if (reports[i].solution.selected != reference[i]) {
        identical = false;
        ++violations;
        std::cout << "DETERMINISM VIOLATION: fused SolveMany request " << i
                  << " at " << threads << " threads\n";
      }
    }
    table.AddRow({"SolveMany fused", std::to_string(threads),
                  Format(secs, 4),
                  Format(static_cast<double>(batch) / secs, 1),
                  identical ? "yes" : "NO"});
    report->AddSolveMany(n, batch, threads, secs, /*fused=*/true);
    std::cout << "fused @" << threads << " threads: " << stats.passes
              << " passes, " << stats.drains << " drains ("
              << stats.fused_drains << " fused, max " << stats.max_drain
              << " passes/drain)\n";
  }
  std::cout << table.ToString()
            << "Takeaway: requests are independent given their seeds, so "
               "the batch fans across the scheduler (each request's own "
               "nested regions fan further) and the reports stay "
               "bit-identical to the serial loop in any order — with "
               "move-scan fusion on, the same juries come back while the "
               "kernel passes drain back to back on the combiner.\n";
  return violations;
}

/// Incremental-vs-full ablation: the same solver, same rng stream, same
/// returned jury — one path scoring moves by O(n) session delta updates,
/// the other by O(n^2) from-scratch evaluation.
void RunIncrementalAblation() {
  const int reps = static_cast<int>(bench::Reps(5));
  bench::PrintHeader(
      "Ablation — incremental vs from-scratch JQ evaluation",
      "Same solver/seed with delta-update sessions on and off; identical "
      "juries, wall-clock and evaluation counts over " +
          std::to_string(reps) + " instances per N.");

  Table table({"solver", "N", "secs (incremental)", "secs (full)", "speedup",
               "full evals (inc)", "evals total"});
  Rng rng(424243);
  for (int n : {50, 100, 200}) {
    struct Cell {
      OnlineStats inc_time, full_time;
      std::size_t inc_full_evals = 0;
      std::size_t total_evals = 0;
    };
    Cell sa, greedy;
    const BucketBvObjective objective;
    for (int rep = 0; rep < reps; ++rep) {
      Rng pool_rng = rng.Fork();
      JspInstance instance;
      instance.candidates = bench::PaperPool(&pool_rng, n, 0.7);
      instance.budget = 1.0;
      instance.alpha = 0.5;
      const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(rep);

      objective.ResetEvaluationCounters();
      {
        Rng sa_rng(seed);
        Timer t;
        const auto s = SolveAnnealing(instance, objective, &sa_rng).value();
        sa.inc_time.Add(t.ElapsedSeconds());
        static_cast<void>(s);
      }
      sa.inc_full_evals += objective.evaluation_counters().full;
      sa.total_evals += objective.evaluation_counters().total();
      {
        Rng sa_rng(seed);
        AnnealingOptions no_inc;
        no_inc.use_incremental = false;
        Timer t;
        const auto s =
            SolveAnnealing(instance, objective, &sa_rng, no_inc).value();
        sa.full_time.Add(t.ElapsedSeconds());
        static_cast<void>(s);
      }

      objective.ResetEvaluationCounters();
      {
        Timer t;
        const auto s = SolveGreedyMarginalGain(instance, objective).value();
        greedy.inc_time.Add(t.ElapsedSeconds());
        static_cast<void>(s);
      }
      greedy.inc_full_evals += objective.evaluation_counters().full;
      greedy.total_evals += objective.evaluation_counters().total();
      {
        GreedyOptions no_inc;
        no_inc.use_incremental = false;
        Timer t;
        const auto s =
            SolveGreedyMarginalGain(instance, objective, no_inc).value();
        greedy.full_time.Add(t.ElapsedSeconds());
        static_cast<void>(s);
      }
    }
    auto emit = [&](const std::string& name, const Cell& cell) {
      const double speedup =
          cell.inc_time.mean() > 0.0
              ? cell.full_time.mean() / cell.inc_time.mean()
              : 0.0;
      table.AddRow({name, std::to_string(n),
                    Format(cell.inc_time.mean(), 6),
                    Format(cell.full_time.mean(), 6),
                    Format(speedup, 2) + "x",
                    std::to_string(cell.inc_full_evals),
                    std::to_string(cell.total_evals)});
    };
    emit("annealing (Alg.3)", sa);
    emit("greedy marginal-gain", greedy);
  }
  std::cout << table.ToString()
            << "Takeaway: per-move delta updates turn the O(n^2) "
               "evaluation inside every solver move into O(n); the paper's "
               "runtime bottleneck (Fig. 7/9) shrinks by the jury size.\n";

  // One labelled run through the shared counter-reporting helper.
  const BucketBvObjective demo;
  Rng pool_rng = rng.Fork();
  JspInstance instance;
  instance.candidates = bench::PaperPool(&pool_rng, 100, 0.7);
  instance.budget = 1.0;
  instance.alpha = 0.5;
  Rng sa_rng(99);
  static_cast<void>(SolveAnnealing(instance, demo, &sa_rng).value());
  bench::PrintEvaluationCounters("annealing N=100 (BV/bucket)", demo);
}

/// Batched-vs-scalar annealing-neighbourhood ablation: the same SA
/// workload with the batched best-improvement polish (the unified
/// ScoreAddBatch/ScoreRemoveBatch/ScoreSwapBatch neighbourhood scan) on,
/// against the PR 3 baselines — the plain scalar-neighbourhood run and
/// the quality-matched "x3 restarts" scale-up. The counter columns are
/// the evidence the unified scan argues from: the polish reaches a
/// deeper local optimum with delta-updated batch scores, where matching
/// its quality by restarts multiplies the full-evaluation (grid-rebuild)
/// budget instead.
void RunBatchedNeighbourhoodAblation(bench::ThreadScalingReport* report) {
  const int reps = static_cast<int>(bench::Reps(8));
  constexpr int kN = 24;
  bench::PrintHeader(
      "Ablation — batched vs scalar annealing neighbourhood",
      "SA at N = 24, B = 0.5; polish = batched unified move scan; "
      "baselines = PR 3 scalar neighbourhood (polish off) and x3 restarts; "
      "mean over " + std::to_string(reps) + " instances.");

  struct Config {
    std::string name;
    AnnealingOptions options;
  };
  std::vector<Config> configs;
  {
    Config off{"scalar neighbourhood (PR 3)", {}};
    off.options.max_polish_moves = 0;
    configs.push_back(off);
    Config restarts{"scalar neighbourhood x3 restarts", {}};
    restarts.options.max_polish_moves = 0;
    restarts.options.num_restarts = 3;
    configs.push_back(restarts);
    Config polish{"batched neighbourhood polish", {}};
    configs.push_back(polish);
    // The payoff regime: the batched scan lets the schedule be cut in
    // half (cooling 0.25 ~ halves the temperature levels) because the
    // polish recovers the local-search quality SA would otherwise need
    // the long tail of the schedule (or extra restarts) to find.
    Config half{"half schedule + batched polish", {}};
    half.options.cooling_factor = 0.25;
    configs.push_back(half);
  }

  const BucketBvObjective objective;
  Rng rng(737373);
  std::vector<JspInstance> instances;
  std::vector<double> optima;
  for (int rep = 0; rep < reps; ++rep) {
    Rng pool_rng = rng.Fork();
    JspInstance instance;
    instance.candidates = bench::PaperPool(&pool_rng, kN, 0.7);
    instance.budget = 0.5;
    instance.alpha = 0.5;
    optima.push_back(
        SolveBranchAndBound(instance, objective).value().jq);
    instances.push_back(std::move(instance));
  }

  Table table({"config", "mean JQ gap", "full evals", "incr evals",
               "secs/solve", "polish moves"});
  for (const Config& config : configs) {
    OnlineStats gap, secs;
    std::size_t polish_moves = 0;
    objective.ResetEvaluationCounters();
    for (int rep = 0; rep < reps; ++rep) {
      Rng sa_rng(31000 + static_cast<std::uint64_t>(rep));
      AnnealingStats stats;
      Timer t;
      const auto s = SolveAnnealing(instances[static_cast<std::size_t>(rep)],
                                    objective, &sa_rng, config.options,
                                    &stats)
                         .value();
      secs.Add(t.ElapsedSeconds());
      gap.Add(optima[static_cast<std::size_t>(rep)] - s.jq);
      polish_moves += stats.polish_moves;
    }
    const EvaluationCounters counters = objective.evaluation_counters();
    table.AddRow({config.name, FormatPercent(gap.mean(), 3),
                  std::to_string(counters.full),
                  std::to_string(counters.incremental),
                  Format(secs.mean(), 6), std::to_string(polish_moves)});
    report->AddAnnealingNeighbourhood(config.name, kN, gap.mean(),
                                      counters.full, counters.incremental,
                                      secs.mean());
  }
  std::cout << table.ToString()
            << "Takeaway: the batched polish makes every returned jury "
               "single-move locally optimal by construction (contiguous "
               "fused-kernel scans over the full neighbourhood), so the "
               "SA schedule can be cut — the half-schedule config matches "
               "the PR 3 baseline's quality with fewer full (grid-"
               "rebuild) evaluations and far less wall-clock, where "
               "matching it by extra restarts multiplies both.\n";
}

/// Nested-parallelism ablation: the budget-table workload the scheduler
/// exists for — 2 rows (fewer than the workers at 4 threads) each driving
/// an inner OPTJS solve with 8 restart chains. The fixed-pool baseline
/// (the PR 2 behavior: rows parallel, inner solvers pinned to one thread)
/// strands every worker without a row of its own; nested solver
/// parallelism fans the 16 chains plus the greedy scans across all
/// workers. Tables are asserted bit-identical between the two modes and
/// across thread counts; the scheduler counters prove the fan-out.
int RunNestedBudgetTableAblation(bench::ThreadScalingReport* report) {
  const int reps = static_cast<int>(bench::Reps(3));
  constexpr int kCandidates = 24;
  const std::vector<double> kBudgets{0.6, 1.2};
  bench::PrintHeader(
      "Ablation — nested budget-table -> OPTJS parallelism",
      "2 rows x (SA with 8 restart chains + greedy fallbacks) at N = 24; "
      "fixed-pool inner pin (PR 2 baseline) vs nested task groups; mean "
      "over " + std::to_string(reps) + " pools.");

  OptjsOptions options;
  options.annealing.num_restarts = 8;

  Table table({"mode", "threads", "secs", "improvement", "identical"});
  Rng rng(626262);
  std::vector<std::vector<Worker>> pools;
  for (int rep = 0; rep < reps; ++rep) {
    Rng pool_rng = rng.Fork();
    pools.push_back(bench::PaperPool(&pool_rng, kCandidates, 0.7));
  }
  int violations = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    OptjsOptions run_options = options;
    run_options.num_threads = threads;
    BudgetTableOptions fixed_pool;
    fixed_pool.nested_solver_parallelism = false;
    BudgetTableOptions nested;

    OnlineStats fixed_secs, nested_secs;
    bool identical = true;
    Scheduler::Global()->ResetCounters();
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng_fixed(4242 + static_cast<std::uint64_t>(rep));
      Timer t_fixed;
      const auto rows_fixed =
          BuildBudgetQualityTable(pools[static_cast<std::size_t>(rep)],
                                  kBudgets, 0.5, &rng_fixed, run_options,
                                  fixed_pool)
              .value();
      fixed_secs.Add(t_fixed.ElapsedSeconds());

      Rng rng_nested(4242 + static_cast<std::uint64_t>(rep));
      Timer t_nested;
      const auto rows_nested =
          BuildBudgetQualityTable(pools[static_cast<std::size_t>(rep)],
                                  kBudgets, 0.5, &rng_nested, run_options,
                                  nested)
              .value();
      nested_secs.Add(t_nested.ElapsedSeconds());

      for (std::size_t i = 0; i < rows_fixed.size(); ++i) {
        if (rows_fixed[i].selected != rows_nested[i].selected) {
          identical = false;
          ++violations;
          std::cout << "DETERMINISM VIOLATION: nested budget table row "
                    << i << " differs at " << threads << " threads\n";
        }
      }
    }
    if (threads == 4) {
      report->SetSchedulerCounters(Scheduler::Global()->counters());
    }
    const double improvement = nested_secs.mean() > 0.0
                                   ? fixed_secs.mean() / nested_secs.mean()
                                   : 0.0;
    table.AddRow({"fixed-pool (PR 2)", std::to_string(threads),
                  Format(fixed_secs.mean(), 6), "1.00x",
                  identical ? "yes" : "NO"});
    table.AddRow({"nested task groups", std::to_string(threads),
                  Format(nested_secs.mean(), 6),
                  Format(improvement, 2) + "x", identical ? "yes" : "NO"});
    report->AddNested(kCandidates, kBudgets.size(), threads,
                      fixed_secs.mean(), nested_secs.mean());
  }
  std::cout << table.ToString()
            << "Takeaway: with fewer rows than workers the fixed pool "
               "strands cores; routing rows through the scheduler's task "
               "groups lets idle workers steal the inner restart chains "
               "and candidate scans, at identical tables.\n";
  return violations;
}

/// Parallel-vs-serial ablation: the same solver, same seed, same returned
/// jury — wall-clock and evaluation counters at 1/2/4 threads. The
/// parallel layer is bit-deterministic in the thread count, so the jury
/// column is asserted identical and only the clock moves. Returns the
/// number of determinism violations so main() can fail the CI smoke run.
int RunParallelAblation(bench::ThreadScalingReport* report) {
  const int reps = static_cast<int>(bench::Reps(3));
  bench::PrintHeader(
      "Ablation — parallel vs serial solver execution",
      "Thread-scaling of multi-restart SA (K=8, N=200), the greedy "
      "marginal-gain scan (N=200) and the partitioned Gray-code "
      "exhaustive sweep (N=20); juries identical across thread counts; "
      "mean over " + std::to_string(reps) + " instances.");

  const std::size_t kThreadCounts[] = {1, 2, 4};
  Table table({"solver", "N", "threads", "secs", "speedup", "evals total"});
  Rng rng(515151);
  int violations = 0;

  struct Workload {
    std::string name;
    int n;
    std::function<JspSolution(const JspInstance&, const JqObjective&,
                              std::uint64_t seed, std::size_t threads)>
        solve;
  };
  const std::vector<Workload> workloads = {
      {"annealing x8 restarts", 200,
       [](const JspInstance& instance, const JqObjective& objective,
          std::uint64_t seed, std::size_t threads) {
         AnnealingOptions options;
         options.num_restarts = 8;
         options.num_threads = threads;
         Rng sa_rng(seed);
         return SolveAnnealing(instance, objective, &sa_rng, options)
             .value();
       }},
      {"greedy marginal-gain", 200,
       [](const JspInstance& instance, const JqObjective& objective,
          std::uint64_t, std::size_t threads) {
         GreedyOptions options;
         options.num_threads = threads;
         return SolveGreedyMarginalGain(instance, objective, options)
             .value();
       }},
      {"exhaustive (Gray-code)", 20,
       [](const JspInstance& instance, const JqObjective& objective,
          std::uint64_t, std::size_t threads) {
         ExhaustiveOptions options;
         options.num_threads = threads;
         return SolveExhaustive(instance, objective, options).value();
       }},
  };

  for (const Workload& workload : workloads) {
    const BucketBvObjective objective;
    std::vector<JspInstance> instances;
    for (int rep = 0; rep < reps; ++rep) {
      Rng pool_rng = rng.Fork();
      JspInstance instance;
      instance.candidates = bench::PaperPool(&pool_rng, workload.n, 0.7);
      instance.budget = workload.n >= 100 ? 1.0 : 0.5;
      instance.alpha = 0.5;
      instances.push_back(std::move(instance));
    }
    double serial_mean = 0.0;
    std::vector<JspSolution> reference;
    for (const std::size_t threads : kThreadCounts) {
      objective.ResetEvaluationCounters();
      OnlineStats secs;
      std::vector<JspSolution> juries;
      for (int rep = 0; rep < reps; ++rep) {
        Timer t;
        juries.push_back(workload.solve(
            instances[static_cast<std::size_t>(rep)], objective,
            9000 + static_cast<std::uint64_t>(rep), threads));
        secs.Add(t.ElapsedSeconds());
      }
      if (threads == 1) {
        serial_mean = secs.mean();
        reference = juries;
      } else {
        for (int rep = 0; rep < reps; ++rep) {
          const auto& a = reference[static_cast<std::size_t>(rep)];
          const auto& b = juries[static_cast<std::size_t>(rep)];
          if (a.selected != b.selected) {
            ++violations;
            std::cout << "DETERMINISM VIOLATION: " << workload.name
                      << " rep " << rep << " at " << threads
                      << " threads\n";
          }
        }
      }
      const double speedup =
          secs.mean() > 0.0 ? serial_mean / secs.mean() : 0.0;
      table.AddRow({workload.name, std::to_string(workload.n),
                    std::to_string(threads), Format(secs.mean(), 6),
                    Format(speedup, 2) + "x",
                    std::to_string(objective.evaluation_counters().total())});
      report->Add(workload.name, workload.n, threads, secs.mean(), speedup);
    }
  }
  std::cout << table.ToString()
            << "Takeaway: restart chains, candidate shards and subset "
               "partitions are independent JQ evaluation streams; the "
               "scheduler turns them into near-linear wall-clock scaling "
               "while the deterministic reductions keep the juries "
               "bit-identical.\n";
  violations += RunNestedBudgetTableAblation(report);
  RunBatchedNeighbourhoodAblation(report);
  return violations;
}

}  // namespace
}  // namespace jury

int main() {
  jury::Run();
  jury::RunIncrementalAblation();
  jury::bench::ThreadScalingReport report;
  int violations = jury::RunParallelAblation(&report);
  violations += jury::RunPlanContextReuse(&report);
  violations += jury::RunSolveManyThroughput(&report);
  report.WriteIfRequested();
  return violations == 0 ? 0 : 1;
}
