// E19 — ablation: JSP solver quality/time trade-offs. Exhaustive optimum
// vs simulated annealing (final-state and best-seen variants) vs the
// greedy baselines, under the paper's default instance distribution.

#include <iostream>

#include "bench_util.h"
#include "core/annealing.h"
#include "core/branch_bound.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace jury {
namespace {

void Run() {
  const int reps = static_cast<int>(bench::Reps(50));
  bench::PrintHeader(
      "Ablation — JSP solvers (N = 12, B = 0.5, paper's distributions)",
      "Mean JQ gap to the exhaustive optimum and mean solve time over " +
          std::to_string(reps) + " instances.");

  const BucketBvObjective objective;
  struct Row {
    OnlineStats gap;
    OnlineStats time;
  };
  Row sa_final, sa_best, sa_removals, sa_restarts, greedy_q, greedy_vpc,
      odd_topk, exhaustive, branch_bound;

  Rng rng(65537);
  for (int rep = 0; rep < reps; ++rep) {
    Rng pool_rng = rng.Fork();
    JspInstance instance;
    instance.candidates = bench::PaperPool(&pool_rng, 12, 0.7);
    instance.budget = 0.5;
    instance.alpha = 0.5;

    Timer t_ex;
    const auto optimal = SolveExhaustive(instance, objective).value();
    exhaustive.time.Add(t_ex.ElapsedSeconds());
    exhaustive.gap.Add(0.0);

    auto record = [&](Row* row, const JspSolution& solution, double secs) {
      row->gap.Add(optimal.jq - solution.jq);
      row->time.Add(secs);
    };

    {
      Timer t;
      const auto s = SolveBranchAndBound(instance, objective).value();
      record(&branch_bound, s, t.ElapsedSeconds());
    }

    {
      Rng sa_rng = rng.Fork();
      Timer t;
      const auto s = SolveAnnealing(instance, objective, &sa_rng).value();
      record(&sa_final, s, t.ElapsedSeconds());
    }
    {
      Rng sa_rng = rng.Fork();
      AnnealingOptions options;
      options.return_best_seen = true;
      Timer t;
      const auto s =
          SolveAnnealing(instance, objective, &sa_rng, options).value();
      record(&sa_best, s, t.ElapsedSeconds());
    }
    {
      Rng sa_rng = rng.Fork();
      AnnealingOptions options;
      options.return_best_seen = true;
      options.removal_probability = 0.25;
      Timer t;
      const auto s =
          SolveAnnealing(instance, objective, &sa_rng, options).value();
      record(&sa_removals, s, t.ElapsedSeconds());
    }
    {
      Timer t;
      JspSolution best_of_three;
      for (int restart = 0; restart < 3; ++restart) {
        Rng sa_rng = rng.Fork();
        const auto s = SolveAnnealing(instance, objective, &sa_rng).value();
        if (restart == 0 || s.jq > best_of_three.jq) best_of_three = s;
      }
      record(&sa_restarts, best_of_three, t.ElapsedSeconds());
    }
    {
      Timer t;
      const auto s = SolveGreedyByQuality(instance, objective).value();
      record(&greedy_q, s, t.ElapsedSeconds());
    }
    {
      Timer t;
      const auto s = SolveGreedyByValuePerCost(instance, objective).value();
      record(&greedy_vpc, s, t.ElapsedSeconds());
    }
    {
      Timer t;
      const auto s = SolveOddTopK(instance, objective).value();
      record(&odd_topk, s, t.ElapsedSeconds());
    }
  }

  Table table({"solver", "mean JQ gap", "max gap", "mean time (s)"});
  auto emit = [&](const std::string& name, const Row& row) {
    table.AddRow({name, FormatPercent(row.gap.mean(), 3),
                  FormatPercent(row.gap.max(), 3),
                  Format(row.time.mean(), 6)});
  };
  emit("exhaustive (reference)", exhaustive);
  emit("branch-and-bound (exact)", branch_bound);
  emit("annealing (paper Alg.3)", sa_final);
  emit("annealing + best-seen", sa_best);
  emit("annealing + removals (ext)", sa_removals);
  emit("annealing x3 restarts", sa_restarts);
  emit("greedy by quality", greedy_q);
  emit("greedy by value/cost", greedy_vpc);
  emit("odd top-k (MV-style)", odd_topk);
  std::cout << table.ToString()
            << "Takeaway: SA trades a tiny quality gap for exponential time "
               "savings; best-seen dominates final-state at equal cost; "
               "greedies are fast but can lose several percent.\n";
}

}  // namespace
}  // namespace jury

int main() {
  jury::Run();
  return 0;
}
