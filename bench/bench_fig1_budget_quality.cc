// E1 — Figure 1: the "Optimal Jury Selection System" walkthrough. Builds
// the budget-quality table for the paper's seven named workers A..G and a
// second table under an informative prior (the Bill Gates 70/30 example).

#include <iostream>

#include "bench_util.h"
#include "core/budget_table.h"
#include "util/rng.h"

namespace jury {
namespace {

std::vector<Worker> Figure1Workers() {
  return {
      {"A", 0.77, 9.0}, {"B", 0.70, 5.0}, {"C", 0.80, 6.0},
      {"D", 0.65, 7.0}, {"E", 0.60, 5.0}, {"F", 0.60, 2.0},
      {"G", 0.75, 3.0},
  };
}

void Run() {
  bench::PrintHeader(
      "Figure 1 — budget-quality table (paper p.1)",
      "Workers A(0.77,$9) B(0.7,$5) C(0.8,$6) D(0.65,$7) E(0.6,$5) "
      "F(0.6,$2) G(0.75,$3); alpha = 0.5.\n"
      "Paper rows: 5->{F,G} 75% | 10->{C,G} 80% | 15->{B,C,G} 84.5% | "
      "20->{A,C,F,G} 86.95%.\n"
      "(At B=10, {C,F} ties {C,G} at exactly 80% and is cheaper; ties break "
      "to the cheaper jury.)");

  Rng rng(2015);
  OptjsOptions options;
  options.bucket.num_buckets = 400;
  const auto rows = BuildBudgetQualityTable(
                        Figure1Workers(), {5.0, 10.0, 15.0, 20.0}, 0.5, &rng,
                        options)
                        .value();
  std::cout << FormatBudgetQualityTable(rows);

  std::cout << "\nWith the task provider's prior alpha = 0.7 (\"Bill Gates "
               "is probably still CEO\"), Theorem 3 folds the belief in as "
               "a free quality-0.7 juror:\n";
  Rng rng2(2016);
  const auto informed = BuildBudgetQualityTable(
                            Figure1Workers(), {5.0, 10.0, 15.0, 20.0}, 0.7,
                            &rng2, options)
                            .value();
  std::cout << FormatBudgetQualityTable(informed);
}

}  // namespace
}  // namespace jury

int main() {
  jury::Run();
  return 0;
}
