// E15/E16 — Figure 10: the real-dataset (simulated AMT sentiment campaign,
// DESIGN.md substitution #1) experiments.
// (a) JSP vs budget; (b) vs candidate count N; (c) vs cost stddev;
// (d) is JQ a good prediction of BV's realized accuracy as votes arrive?

#include <functional>
#include <iostream>

#include "bench_util.h"
#include "core/mvjs.h"
#include "core/optjs.h"
#include "crowd/sentiment.h"
#include "jq/bucket.h"
#include "strategy/bayesian.h"
#include "util/stats.h"
#include "util/table.h"

namespace jury {
namespace {

using crowd::SentimentDataset;

/// Builds the per-question JSP candidate set: the first `n` workers who
/// answered it, with their empirically estimated qualities and synthetic
/// costs ~ N(0.05, cost_sigma^2) truncated at 0.01.
JspInstance QuestionInstance(const SentimentDataset& dataset,
                             std::size_t question, std::size_t n,
                             double budget, double cost_sigma, Rng* rng) {
  JspInstance instance;
  instance.budget = budget;
  instance.alpha = 0.5;
  const auto& answers = dataset.campaign.tasks[question].answers;
  for (std::size_t i = 0; i < std::min(n, answers.size()); ++i) {
    instance.candidates.emplace_back(
        "w" + std::to_string(answers[i].worker),
        dataset.estimated_quality[answers[i].worker],
        rng->TruncatedGaussian(0.05, cost_sigma, 0.01, 1e9));
  }
  return instance;
}

struct Point {
  double optjs = 0.0;
  double mvjs = 0.0;
};

Point AverageOverQuestions(
    const SentimentDataset& /*dataset*/, std::size_t num_questions,
    std::uint64_t seed,
    const std::function<JspInstance(std::size_t, Rng*)>& make_instance) {
  Rng rng(seed);
  OnlineStats optjs_stats, mvjs_stats;
  for (std::size_t q = 0; q < num_questions; ++q) {
    JspInstance instance = make_instance(q, &rng);
    Rng r1 = rng.Fork();
    Rng r2 = rng.Fork();
    optjs_stats.Add(SolveOptjs(instance, &r1).value().jq);
    mvjs_stats.Add(SolveMvjs(instance, &r2).value().jq);
  }
  return {optjs_stats.mean(), mvjs_stats.mean()};
}

void Run() {
  const std::size_t questions =
      static_cast<std::size_t>(bench::Reps(120));  // of the 600
  bench::PrintHeader(
      "Figure 10 — real-dataset evaluation (simulated AMT campaign)",
      "600 sentiment tasks, 128 workers, 20 votes each; empirical worker "
      "qualities; " +
          std::to_string(questions) + " questions per point (paper: 600).");

  Rng dataset_rng(20150323);
  const auto dataset =
      crowd::MakeSentimentDataset(crowd::SentimentConfig{}, &dataset_rng)
          .value();
  std::cout << "Dataset: mean estimated quality "
            << Format(dataset.mean_estimated_quality, 3) << ", "
            << dataset.workers_above_08 << " workers > 0.8, "
            << dataset.workers_below_06 << " workers < 0.6 (paper: 0.71 / 40 "
            << "/ ~13).\n";

  std::cout << "\n--- Fig 10(a): varying budget B (N=20) ---\n";
  Table a({"B", "MVJS", "OPTJS"});
  for (double b : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto p = AverageOverQuestions(
        dataset, questions, 100 + static_cast<std::uint64_t>(b * 100),
        [&](std::size_t q, Rng* rng) {
          return QuestionInstance(dataset, q, 20, b, 0.2, rng);
        });
    a.AddRow({Format(b, 1), FormatPercent(p.mvjs), FormatPercent(p.optjs)});
  }
  std::cout << a.ToString();

  std::cout << "\n--- Fig 10(b): varying candidate count N (B=0.5) ---\n";
  Table bt({"N", "MVJS", "OPTJS"});
  for (std::size_t n : {4u, 8u, 12u, 16u, 20u}) {
    const auto p = AverageOverQuestions(
        dataset, questions, 200 + static_cast<std::uint64_t>(n),
        [&](std::size_t q, Rng* rng) {
          return QuestionInstance(dataset, q, n, 0.5, 0.2, rng);
        });
    bt.AddRow({std::to_string(n), FormatPercent(p.mvjs),
               FormatPercent(p.optjs)});
  }
  std::cout << bt.ToString();

  std::cout << "\n--- Fig 10(c): varying cost stddev (N=20, B=0.5) ---\n";
  Table c({"sigma", "MVJS", "OPTJS"});
  for (double s : {0.1, 0.3, 0.5, 0.7, 1.0}) {
    const auto p = AverageOverQuestions(
        dataset, questions, 300 + static_cast<std::uint64_t>(s * 100),
        [&](std::size_t q, Rng* rng) {
          return QuestionInstance(dataset, q, 20, 0.5, s, rng);
        });
    c.AddRow({Format(s, 1), FormatPercent(p.mvjs), FormatPercent(p.optjs)});
  }
  std::cout << c.ToString()
            << "Paper shape (a-c): OPTJS >= MVJS throughout, mirroring the "
               "synthetic Fig. 6(b-d).\n";

  std::cout << "\n--- Fig 10(d): JQ prediction vs realized BV accuracy ---\n";
  Table d({"z votes", "Average JQ", "Accuracy"});
  const BayesianVoting bv;
  for (std::size_t z : {3u, 6u, 9u, 12u, 15u, 18u, 20u}) {
    OnlineStats jq_stats;
    int correct = 0;
    for (const auto& task : dataset.campaign.tasks) {
      Jury jury;
      Votes votes;
      for (std::size_t i = 0; i < std::min<std::size_t>(z, task.answers.size());
           ++i) {
        const auto& answer = task.answers[i];
        jury.Add({"w", dataset.estimated_quality[answer.worker], 0.0});
        votes.push_back(static_cast<std::uint8_t>(answer.vote));
      }
      BucketJqOptions tight;
      tight.num_buckets = 200;
      jq_stats.Add(EstimateJq(jury, 0.5, tight).value());
      const int decided = bv.ProbZero(jury, votes, 0.5) >= 1.0 ? 0 : 1;
      correct += (decided == task.truth);
    }
    d.AddRow({std::to_string(z), FormatPercent(jq_stats.mean()),
              FormatPercent(static_cast<double>(correct) /
                            static_cast<double>(dataset.campaign.tasks.size()))});
  }
  std::cout << d.ToString()
            << "Paper shape: the two columns track each other closely — JQ "
               "is a good predictor of realized accuracy.\n";
}

}  // namespace
}  // namespace jury

int main() {
  jury::Run();
  return 0;
}
