// Async-submission tests: `PoolPlanContext::SubmitMany` futures must be
// byte-identical to blocking solves for any thread count and any Take
// order, dropping futures must be safe, retry/fusion options must ride
// through, and the per-context `ScratchArena` must actually recycle
// session buffers across requests.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "api/solve.h"
#include "core/objective.h"
#include "gtest/gtest.h"
#include "model/worker.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/scratch_arena.h"

namespace jury {
namespace {

using jury::testing::RandomPool;

std::vector<Worker> TestPool(int n = 32) {
  Rng rng(20150323);
  return RandomPool(&rng, n, 0.55, 0.9, 0.05, 0.6);
}

/// Report bytes with the one legitimately timing-dependent field zeroed
/// (the identity contract, as in `api_test.cc`).
std::string CanonicalJson(api::SolveReport report) {
  report.wall_seconds = 0.0;
  return report.ToJson();
}

std::vector<api::SolveRequest> MixedBatch(std::size_t count) {
  // A mix of deterministic and stochastic solvers, each with its own
  // scalars and seed.
  const char* solvers[] = {"optjs", "annealing", "greedy-value", "mvjs"};
  std::vector<api::SolveRequest> requests;
  for (std::size_t i = 0; i < count; ++i) {
    api::SolveRequest request;
    request.solver = solvers[i % 4];
    request.budget = 1.0 + 0.15 * static_cast<double>(i);
    request.alpha = 0.35 + 0.02 * static_cast<double>(i % 8);
    request.rng_seed = 1000 + i;
    requests.push_back(request);
  }
  return requests;
}

TEST(SubmitManyTest, FuturesMatchBlockingSolvesAcrossThreadCounts) {
  auto planned = api::PoolPlanContext::Plan(TestPool());
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  const std::vector<api::SolveRequest> requests = MixedBatch(12);

  std::vector<std::string> expected;
  for (const api::SolveRequest& request : requests) {
    auto report = context.Solve(request);
    ASSERT_TRUE(report.ok());
    expected.push_back(CanonicalJson(report.value()));
  }

  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
    api::SubmitOptions options;
    options.num_threads = threads;
    std::vector<api::SolveFuture> futures =
        context.SubmitMany(requests, options);
    ASSERT_EQ(futures.size(), requests.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
      auto report = futures[i].Take();
      ASSERT_TRUE(report.ok());
      EXPECT_EQ(CanonicalJson(report.value()), expected[i])
          << "request " << i << " at " << threads << " threads";
    }
  }
}

TEST(SubmitManyTest, TakeOrderDoesNotMatter) {
  auto planned = api::PoolPlanContext::Plan(TestPool());
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  const std::vector<api::SolveRequest> requests = MixedBatch(8);

  std::vector<std::string> expected;
  for (const api::SolveRequest& request : requests) {
    auto report = context.Solve(request);
    ASSERT_TRUE(report.ok());
    expected.push_back(CanonicalJson(report.value()));
  }

  api::SubmitOptions options;
  options.num_threads = 4;
  std::vector<api::SolveFuture> futures = context.SubmitMany(requests, options);
  // Harvest in reverse — the completion order the scheduler produced is
  // irrelevant to what each future returns.
  for (std::size_t r = futures.size(); r-- > 0;) {
    auto report = futures[r].Take();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(CanonicalJson(report.value()), expected[r]);
  }
}

TEST(SubmitManyTest, OnCompleteFiresOncePerRequest) {
  auto planned = api::PoolPlanContext::Plan(TestPool());
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  const std::vector<api::SolveRequest> requests = MixedBatch(10);

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::size_t> completed;
  api::SubmitOptions options;
  options.num_threads = 4;
  options.on_complete = [&](std::size_t index) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      completed.push_back(index);
    }
    cv.notify_all();
  };
  std::vector<api::SolveFuture> futures = context.SubmitMany(requests, options);
  for (api::SolveFuture& future : futures) future.Wait();

  // The future is published before its callback runs, so Wait() alone
  // does not bound the callbacks — wait on them directly.
  std::unique_lock<std::mutex> lock(mutex);
  cv.wait(lock, [&] { return completed.size() == requests.size(); });
  ASSERT_EQ(completed.size(), requests.size());
  std::set<std::size_t> unique(completed.begin(), completed.end());
  EXPECT_EQ(unique.size(), requests.size());
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), requests.size() - 1);
}

TEST(SubmitManyTest, DroppingFuturesIsSafe) {
  auto planned = api::PoolPlanContext::Plan(TestPool());
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  const std::vector<api::SolveRequest> requests = MixedBatch(8);
  {
    api::SubmitOptions options;
    options.num_threads = 4;
    std::vector<api::SolveFuture> futures =
        context.SubmitMany(requests, options);
    // Take one, drop the rest without waiting: the batch must drain
    // cleanly behind the scenes (checked implicitly — no hang, no leak
    // under sanitizers).
    ASSERT_TRUE(futures[3].Take().ok());
  }
  // The context is still fully usable.
  ASSERT_TRUE(context.Solve(requests[0]).ok());
}

TEST(SubmitManyTest, ReadyIsEventuallyTrueAndNonBlocking) {
  auto planned = api::PoolPlanContext::Plan(TestPool());
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  const std::vector<api::SolveRequest> requests = MixedBatch(4);
  api::SubmitOptions options;
  options.num_threads = 2;
  std::vector<api::SolveFuture> futures = context.SubmitMany(requests, options);
  for (api::SolveFuture& future : futures) {
    future.Wait();
    EXPECT_TRUE(future.Ready());
  }
  // Serial path: futures are ready the moment SubmitMany returns.
  options.num_threads = 1;
  std::vector<api::SolveFuture> serial = context.SubmitMany(requests, options);
  for (const api::SolveFuture& future : serial) EXPECT_TRUE(future.Ready());
}

TEST(SubmitManyTest, EmptyBatchReturnsNoFutures) {
  auto planned = api::PoolPlanContext::Plan(TestPool());
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  EXPECT_TRUE(context.SubmitMany({}).empty());
}

TEST(SubmitManyTest, FusedMoveScansStayByteIdentical) {
  auto planned = api::PoolPlanContext::Plan(TestPool(40));
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  std::vector<api::SolveRequest> requests;
  for (int i = 0; i < 8; ++i) {
    api::SolveRequest request;
    request.solver = "annealing";
    request.budget = 1.2 + 0.1 * i;
    request.alpha = 0.4;
    request.rng_seed = 42 + static_cast<std::uint64_t>(i);
    requests.push_back(request);
  }
  std::vector<std::string> expected;
  for (const api::SolveRequest& request : requests) {
    auto report = context.Solve(request);
    ASSERT_TRUE(report.ok());
    expected.push_back(CanonicalJson(report.value()));
  }
  api::SubmitOptions options;
  options.num_threads = 4;
  options.fuse_move_scans = true;
  std::vector<api::SolveFuture> futures = context.SubmitMany(requests, options);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    auto report = futures[i].Take();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(CanonicalJson(report.value()), expected[i]);
  }
}

TEST(SubmitManyTest, InvalidRequestFailsItsFutureOnly) {
  auto planned = api::PoolPlanContext::Plan(TestPool());
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  std::vector<api::SolveRequest> requests = MixedBatch(4);
  requests[1].solver = "no-such-solver";
  requests[2].budget = -1.0;
  api::SubmitOptions options;
  options.num_threads = 4;
  std::vector<api::SolveFuture> futures = context.SubmitMany(requests, options);
  EXPECT_TRUE(futures[0].Take().ok());
  EXPECT_EQ(futures[1].Take().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(futures[2].Take().status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(futures[3].Take().ok());
}

// ---------------------------------------------------------------------------
// ScratchArena

TEST(ScratchArenaTest, AdoptReusesDonatedCapacity) {
  ScratchArena arena;
  std::vector<double> buffer;
  arena.Adopt(&buffer);  // nothing retained yet: a miss
  buffer.resize(128);
  const double* data = buffer.data();
  arena.Donate(&buffer);
  EXPECT_TRUE(buffer.empty());

  std::vector<double> again;
  arena.Adopt(&again);
  EXPECT_TRUE(again.empty());  // capacity transfers, contents never do
  EXPECT_EQ(again.data(), data);
  EXPECT_GE(again.capacity(), 128u);

  const ScratchArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.reuses, 1u);
  EXPECT_EQ(stats.donations, 1u);
}

TEST(ScratchArenaTest, TypedPoolsDoNotCross) {
  ScratchArena arena;
  std::vector<double> doubles(64);
  std::vector<std::int64_t> ints(64);
  arena.Donate(&doubles);
  arena.Donate(&ints);
  std::vector<std::size_t> sizes;
  arena.Adopt(&sizes);  // no size_t capacity donated: a miss
  EXPECT_EQ(arena.stats().misses, 1u);
  std::vector<std::int64_t> ints_again;
  arena.Adopt(&ints_again);
  EXPECT_EQ(arena.stats().reuses, 1u);
}

TEST(ScratchArenaTest, RetentionCapDiscardsExcessDonations) {
  ScratchArena arena(/*max_retained=*/1);
  std::vector<double> a(8), b(8);
  arena.Donate(&a);
  arena.Donate(&b);  // pool full: freed, not retained
  const ScratchArena::Stats stats = arena.stats();
  EXPECT_EQ(stats.donations, 1u);
  EXPECT_EQ(stats.discards, 1u);
  EXPECT_EQ(stats.retained, 1u);
}

TEST(ScratchArenaTest, SessionsRecycleBatchBuffersAcrossRequests) {
  // The serving-loop pattern one level down: sessions bound to an arena
  // donate their batched-scan staging buffers at destruction, and the
  // next request's session adopts them back.
  ScratchArena arena;
  const MajorityObjective objective;
  objective.BindScratchArena(&arena);
  Rng rng(7);
  const std::vector<Worker> pool = RandomPool(&rng, 24, 0.5, 0.9, 0.05, 0.5);
  std::vector<const Worker*> candidates;
  for (const Worker& worker : pool) candidates.push_back(&worker);
  std::vector<double> scores(pool.size());
  for (int request = 0; request < 3; ++request) {
    auto session = objective.StartSession(0.5);
    session->ScoreAddBatch(candidates.data(), candidates.size(),
                           scores.data());
  }
  const ScratchArena::Stats stats = arena.stats();
  EXPECT_GT(stats.donations, 0u);
  EXPECT_GT(stats.reuses, 0u);
}

}  // namespace
}  // namespace jury
