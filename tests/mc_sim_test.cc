#include <vector>

#include "gtest/gtest.h"
#include "crowd/mc_sim.h"
#include "multiclass/dawid_skene.h"
#include "util/rng.h"

namespace jury::crowd {
namespace {

using mc::ConfusionMatrix;

TEST(McSimTest, VoteDistributionMatchesConfusionRow) {
  Rng rng(1);
  ConfusionMatrix cm(3, {0.7, 0.2, 0.1,  //
                         0.1, 0.8, 0.1,  //
                         0.3, 0.3, 0.4});
  for (std::size_t truth = 0; truth < 3; ++truth) {
    std::vector<int> counts(3, 0);
    const int trials = 60000;
    for (int i = 0; i < trials; ++i) {
      ++counts[SimulateMcVote(cm, truth, &rng)];
    }
    for (std::size_t k = 0; k < 3; ++k) {
      EXPECT_NEAR(static_cast<double>(counts[k]) / trials, cm(truth, k),
                  0.01)
          << "truth=" << truth << " vote=" << k;
    }
  }
}

TEST(McSimTest, WorldRespectsPrior) {
  Rng rng(3);
  std::vector<ConfusionMatrix> cms(3, ConfusionMatrix::FromQuality(0.8, 3));
  const auto world =
      SimulateMcWorld(cms, 30000, &rng, {0.6, 0.3, 0.1}).value();
  std::vector<int> counts(3, 0);
  for (std::size_t truth : world.truths) {
    ++counts[truth];
  }
  EXPECT_NEAR(counts[0] / 30000.0, 0.6, 0.01);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.01);
  EXPECT_NEAR(counts[2] / 30000.0, 0.1, 0.01);
}

TEST(McSimTest, WorldIsDenseAndValid) {
  Rng rng(5);
  std::vector<ConfusionMatrix> cms(4, ConfusionMatrix::FromQuality(0.7, 2));
  const auto world = SimulateMcWorld(cms, 100, &rng).value();
  EXPECT_TRUE(world.dataset.Validate().ok());
  ASSERT_EQ(world.dataset.tasks.size(), 100u);
  for (const auto& task : world.dataset.tasks) {
    EXPECT_EQ(task.size(), 4u);  // every worker answers every task
  }
}

TEST(McSimTest, EmpiricalConfusionRecoversLatent) {
  Rng rng(7);
  std::vector<ConfusionMatrix> cms{
      ConfusionMatrix(3, {0.9, 0.05, 0.05,  //
                          0.1, 0.7, 0.2,    //
                          0.1, 0.2, 0.7}),
      ConfusionMatrix::FromQuality(0.6, 3)};
  const auto world = SimulateMcWorld(cms, 3000, &rng).value();
  const auto estimated =
      EstimateConfusionEmpirical(world.dataset, world.truths).value();
  for (std::size_t w = 0; w < cms.size(); ++w) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t k = 0; k < 3; ++k) {
        EXPECT_NEAR(estimated[w](j, k), cms[w](j, k), 0.04)
            << "w=" << w << " (" << j << "," << k << ")";
      }
    }
  }
}

TEST(McSimTest, EstimatedMatricesValidate) {
  Rng rng(9);
  std::vector<ConfusionMatrix> cms(2, ConfusionMatrix::FromQuality(0.75, 4));
  const auto world = SimulateMcWorld(cms, 50, &rng).value();
  const auto estimated =
      EstimateConfusionEmpirical(world.dataset, world.truths).value();
  for (const auto& cm : estimated) {
    EXPECT_TRUE(cm.Validate().ok());
  }
}

TEST(McSimTest, EmAgreesWithEmpiricalOnDenseData) {
  // Cross-validate the two estimation paths: ground-truth empirical vs
  // Dawid-Skene EM (no truths). On high-quality dense data they coincide.
  Rng rng(11);
  std::vector<ConfusionMatrix> cms(5, ConfusionMatrix::FromQuality(0.85, 3));
  const auto world = SimulateMcWorld(cms, 600, &rng).value();
  const auto empirical =
      EstimateConfusionEmpirical(world.dataset, world.truths).value();
  const auto em = mc::RunMcDawidSkene(world.dataset).value();
  for (std::size_t w = 0; w < cms.size(); ++w) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t k = 0; k < 3; ++k) {
        EXPECT_NEAR(em.confusion[w](j, k), empirical[w](j, k), 0.05);
      }
    }
  }
}

TEST(McSimTest, ValidatesInputs) {
  Rng rng(13);
  EXPECT_FALSE(SimulateMcWorld({}, 10, &rng).ok());
  std::vector<ConfusionMatrix> mixed{ConfusionMatrix::FromQuality(0.7, 2),
                                     ConfusionMatrix::FromQuality(0.7, 3)};
  EXPECT_FALSE(SimulateMcWorld(mixed, 10, &rng).ok());
  std::vector<ConfusionMatrix> ok{ConfusionMatrix::FromQuality(0.7, 2)};
  EXPECT_FALSE(SimulateMcWorld(ok, 10, nullptr).ok());
  EXPECT_FALSE(SimulateMcWorld(ok, 10, &rng, {0.5, 0.6}).ok());

  const auto world = SimulateMcWorld(ok, 10, &rng).value();
  EXPECT_FALSE(
      EstimateConfusionEmpirical(world.dataset, {0, 1}).ok());  // size
  EXPECT_FALSE(EstimateConfusionEmpirical(world.dataset, world.truths, -1.0)
                   .ok());
}

}  // namespace
}  // namespace jury::crowd
