#include <cmath>
#include <tuple>

#include "gtest/gtest.h"
#include "jq/exact.h"
#include "strategy/bayesian.h"
#include "model/jury.h"
#include "multiclass/bv.h"
#include "multiclass/confusion.h"
#include "multiclass/decompose.h"
#include "multiclass/jq_bucket.h"
#include "multiclass/jq_exact.h"
#include "multiclass/jsp.h"
#include "multiclass/model.h"
#include "multiclass/multilabel.h"
#include "multiclass/spammer.h"
#include "util/rng.h"

namespace jury::mc {
namespace {

/// Random row-stochastic confusion matrix with a diagonal boost so workers
/// are (usually) informative.
ConfusionMatrix RandomConfusion(Rng* rng, std::size_t labels,
                                double diagonal_boost = 2.0) {
  ConfusionMatrix cm = ConfusionMatrix::UniformSpammer(labels);
  for (std::size_t j = 0; j < labels; ++j) {
    std::vector<double> row(labels);
    double sum = 0.0;
    for (std::size_t k = 0; k < labels; ++k) {
      row[k] = rng->Uniform(0.05, 1.0) * (j == k ? diagonal_boost : 1.0);
      sum += row[k];
    }
    for (std::size_t k = 0; k < labels; ++k) cm.at(j, k) = row[k] / sum;
  }
  return cm;
}

McJury RandomMcJury(Rng* rng, std::size_t n, std::size_t labels) {
  McJury jury;
  for (std::size_t i = 0; i < n; ++i) {
    jury.Add(McWorker("m" + std::to_string(i), RandomConfusion(rng, labels),
                      0.0));
  }
  return jury;
}

// -------------------------------------------------------------- Confusion

TEST(ConfusionTest, FactoriesValidate) {
  EXPECT_TRUE(ConfusionMatrix::FromQuality(0.8, 3).Validate().ok());
  EXPECT_TRUE(ConfusionMatrix::Identity(4).Validate().ok());
  EXPECT_TRUE(ConfusionMatrix::UniformSpammer(5).Validate().ok());
}

TEST(ConfusionTest, FromQualityEntries) {
  const auto cm = ConfusionMatrix::FromQuality(0.7, 3);
  EXPECT_DOUBLE_EQ(cm(0, 0), 0.7);
  EXPECT_DOUBLE_EQ(cm(0, 1), 0.15);
  EXPECT_DOUBLE_EQ(cm(2, 2), 0.7);
}

TEST(ConfusionTest, RejectsNonStochasticRows) {
  ConfusionMatrix cm(2, {0.5, 0.4, 0.5, 0.5});
  EXPECT_FALSE(cm.Validate().ok());
  ConfusionMatrix negative(2, {1.2, -0.2, 0.5, 0.5});
  EXPECT_FALSE(negative.Validate().ok());
}

TEST(ConfusionTest, RowExtraction) {
  const auto cm = ConfusionMatrix::FromQuality(0.6, 2);
  const auto row = cm.Row(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 0.4);
  EXPECT_DOUBLE_EQ(row[1], 0.6);
}

// ------------------------------------------------------------------- BV

TEST(McBvTest, FollowsTheStrongWorker) {
  McJury jury;
  jury.Add({"strong", ConfusionMatrix::FromQuality(0.95, 3), 0.0});
  jury.Add({"weak", ConfusionMatrix::FromQuality(0.4, 3), 0.0});
  const McPrior prior = UniformMcPrior(3);
  EXPECT_EQ(McBayesianDecide(jury, {2, 0}, prior).value(), 2u);
}

TEST(McBvTest, PriorBreaksTies) {
  McJury jury;
  jury.Add({"spam", ConfusionMatrix::UniformSpammer(3), 0.0});
  const McPrior prior{0.2, 0.5, 0.3};
  EXPECT_EQ(McBayesianDecide(jury, {0}, prior).value(), 1u);
}

TEST(McBvTest, UniformEverythingPicksSmallestLabel) {
  McJury jury;
  jury.Add({"spam", ConfusionMatrix::UniformSpammer(4), 0.0});
  EXPECT_EQ(McBayesianDecide(jury, {3}, UniformMcPrior(4)).value(), 0u);
}

TEST(McBvTest, BinaryCaseMatchesScalarBv) {
  // l = 2 with symmetric confusion == the §2 binary model; decisions must
  // coincide with the binary BayesianVoting on every voting.
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.UniformInt(5);
    std::vector<double> qs;
    McJury mc_jury;
    for (std::size_t i = 0; i < n; ++i) {
      const double q = rng.Uniform(0.3, 0.97);
      qs.push_back(q);
      mc_jury.Add({"w", ConfusionMatrix::FromQuality(q, 2), 0.0});
    }
    const Jury bin_jury = Jury::FromQualities(qs);
    const double alpha = rng.Uniform(0.1, 0.9);
    const McPrior prior{alpha, 1.0 - alpha};
    jury::BayesianVoting bv;
    for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
      McVotes mc_votes(n);
      Votes bin_votes(n);
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t v = (mask >> i) & 1u;
        mc_votes[i] = v;
        bin_votes[i] = static_cast<std::uint8_t>(v);
      }
      const std::size_t mc_result =
          McBayesianDecide(mc_jury, mc_votes, prior).value();
      const int bin_result =
          bv.ProbZero(bin_jury, bin_votes, alpha) >= 1.0 ? 0 : 1;
      EXPECT_EQ(mc_result, static_cast<std::size_t>(bin_result));
    }
  }
}

// ------------------------------------------------------------------- JQ

TEST(McJqTest, BinaryCaseMatchesScalarExactJq) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.UniformInt(6);
    std::vector<double> qs;
    McJury mc_jury;
    for (std::size_t i = 0; i < n; ++i) {
      const double q = rng.Uniform(0.3, 0.97);
      qs.push_back(q);
      mc_jury.Add({"w", ConfusionMatrix::FromQuality(q, 2), 0.0});
    }
    const double alpha = rng.Uniform(0.1, 0.9);
    const double mc_jq =
        ExactMcJq(mc_jury, {alpha, 1.0 - alpha}).value();
    const double bin_jq =
        ExactJqBv(Jury::FromQualities(qs), alpha).value();
    EXPECT_NEAR(mc_jq, bin_jq, 1e-10);
  }
}

TEST(McJqTest, SpammersGiveBestPriorMass) {
  McJury jury;
  jury.Add({"spam", ConfusionMatrix::UniformSpammer(3), 0.0});
  jury.Add({"spam2", ConfusionMatrix::UniformSpammer(3), 0.0});
  const McPrior prior{0.5, 0.3, 0.2};
  EXPECT_NEAR(ExactMcJq(jury, prior).value(), 0.5, 1e-10);
}

TEST(McJqTest, PerfectWorkerGivesOne) {
  McJury jury;
  jury.Add({"oracle", ConfusionMatrix::Identity(4), 0.0});
  EXPECT_NEAR(ExactMcJq(jury, UniformMcPrior(4)).value(), 1.0, 1e-9);
}

TEST(McJqTest, GuardsHugeEnumerations) {
  McJury jury;
  for (int i = 0; i < 30; ++i) {
    jury.Add({"w", ConfusionMatrix::FromQuality(0.8, 4), 0.0});
  }
  EXPECT_EQ(ExactMcJq(jury, UniformMcPrior(4)).status().code(),
            StatusCode::kOutOfRange);
}

class McBucketAgreementTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, int>> {};

TEST_P(McBucketAgreementTest, BucketedTracksExact) {
  const auto [n, labels, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 60013 +
          static_cast<std::uint64_t>(n * 17 + labels));
  const McJury jury = RandomMcJury(&rng, n, labels);
  // Random informative prior.
  McPrior prior(labels);
  double sum = 0.0;
  for (auto& p : prior) {
    p = rng.Uniform(0.1, 1.0);
    sum += p;
  }
  for (auto& p : prior) p /= sum;

  const double exact = ExactMcJq(jury, prior).value();
  McBucketOptions options;
  options.num_buckets = 256;
  McBucketStats stats;
  const double approx = EstimateMcJq(jury, prior, options, &stats).value();
  EXPECT_NEAR(approx, exact, 0.02)
      << "n=" << n << " labels=" << labels;
  EXPECT_GT(stats.max_keys, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, McBucketAgreementTest,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 6u),
                       ::testing::Values(2u, 3u, 4u),
                       ::testing::Values(1, 2)));

TEST(McBucketTest, MoreBucketsMoreAccuracy) {
  Rng rng(31);
  const McJury jury = RandomMcJury(&rng, 5, 3);
  const McPrior prior = UniformMcPrior(3);
  const double exact = ExactMcJq(jury, prior).value();
  double coarse_err = 0.0, fine_err = 0.0;
  {
    McBucketOptions o;
    o.num_buckets = 8;
    coarse_err = std::fabs(EstimateMcJq(jury, prior, o).value() - exact);
  }
  {
    McBucketOptions o;
    o.num_buckets = 1024;
    fine_err = std::fabs(EstimateMcJq(jury, prior, o).value() - exact);
  }
  EXPECT_LE(fine_err, coarse_err + 1e-9);
  EXPECT_LT(fine_err, 5e-3);
}

TEST(McJqTest, Lemma1ExtendsToMulticlass) {
  // §7: "the more workers, the better JQ" still holds.
  Rng rng(37);
  for (int trial = 0; trial < 15; ++trial) {
    const McJury jury = RandomMcJury(&rng, 3, 3);
    const McPrior prior = UniformMcPrior(3);
    const double base = ExactMcJq(jury, prior).value();
    McJury bigger = jury;
    bigger.Add({"extra", RandomConfusion(&rng, 3), 0.0});
    EXPECT_GE(ExactMcJq(bigger, prior).value(), base - 1e-10);
  }
}

// -------------------------------------------------------------- Spammer

TEST(SpammerTest, KnownScores) {
  EXPECT_NEAR(SpammerScore(ConfusionMatrix::UniformSpammer(3)).value(), 0.0,
              1e-12);
  EXPECT_NEAR(SpammerScore(ConfusionMatrix::Identity(3)).value(), 1.0,
              1e-12);
  // Binary symmetric worker: |2q - 1| (Raykar-Yu).
  for (double q : {0.5, 0.6, 0.8, 0.95}) {
    EXPECT_NEAR(SpammerScore(ConfusionMatrix::FromQuality(q, 2)).value(),
                std::fabs(2.0 * q - 1.0), 1e-12);
  }
}

TEST(SpammerTest, RankingPutsSpammersLast) {
  McJury jury;
  jury.Add({"spam", ConfusionMatrix::UniformSpammer(3), 0.0});
  jury.Add({"good", ConfusionMatrix::FromQuality(0.9, 3), 0.0});
  jury.Add({"ok", ConfusionMatrix::FromQuality(0.7, 3), 0.0});
  const auto order = RankWorkersByInformativeness(jury).value();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 2u);
  EXPECT_EQ(order[2], 0u);
}

// ------------------------------------------------------------ Decompose

TEST(DecomposeTest, BinaryProjectionsAreConsistent) {
  McJury jury;
  jury.Add({"w", ConfusionMatrix::FromQuality(0.8, 3), 0.0});
  const McPrior prior{0.5, 0.3, 0.2};
  const auto projections = DecomposeToBinary(jury, prior).value();
  ASSERT_EQ(projections.size(), 3u);
  for (const auto& p : projections) {
    EXPECT_DOUBLE_EQ(p.alpha, prior[p.label]);
    ASSERT_EQ(p.workers.size(), 1u);
    EXPECT_GT(p.workers[0].quality, 0.5);
    EXPECT_LE(p.workers[0].quality, 1.0);
  }
  // For the symmetric worker: Pr(correct on "is it 0?") =
  // 0.5*0.8 + (0.3+0.2)*(1-0.1) = 0.85.
  EXPECT_NEAR(projections[0].workers[0].quality, 0.85, 1e-12);
}

TEST(DecomposeTest, PerfectWorkerProjectsToPerfectBinaryWorkers) {
  McJury jury;
  jury.Add({"oracle", ConfusionMatrix::Identity(3), 0.0});
  const auto projections =
      DecomposeToBinary(jury, UniformMcPrior(3)).value();
  for (const auto& p : projections) {
    EXPECT_NEAR(p.workers[0].quality, 1.0, 1e-9);
  }
}

// ------------------------------------------------------------ Multilabel

TEST(MultiLabelTest, PlansOneSelectionPerLabel) {
  Rng rng(47);
  McJury candidates;
  for (int i = 0; i < 10; ++i) {
    candidates.Add({"c" + std::to_string(i), RandomConfusion(&rng, 3),
                    rng.Uniform(0.05, 0.3)});
  }
  Rng solver_rng(11);
  const auto plan =
      PlanMultiLabelSelection(candidates, {0.5, 0.3, 0.2}, 0.5, &solver_rng)
          .value();
  ASSERT_EQ(plan.selections.size(), 3u);
  double cost = 0.0;
  for (const auto& sel : plan.selections) {
    EXPECT_LE(sel.cost, 0.5 + 1e-12);
    EXPECT_GE(sel.jq, 0.5);
    cost += sel.cost;
    // Selected indices refer to the original pool.
    for (std::size_t idx : sel.selected) EXPECT_LT(idx, 10u);
  }
  EXPECT_NEAR(plan.total_cost, cost, 1e-12);
}

TEST(MultiLabelTest, ConfidentPriorLabelsNeedLessQuality) {
  // A near-certain label ("is it label 0?" with prior 0.9) starts at JQ
  // 0.9 from the prior alone; its plan should never fall below that.
  Rng rng(53);
  McJury candidates;
  for (int i = 0; i < 8; ++i) {
    candidates.Add({"c" + std::to_string(i), RandomConfusion(&rng, 3),
                    rng.Uniform(0.1, 0.4)});
  }
  Rng solver_rng(13);
  const auto plan =
      PlanMultiLabelSelection(candidates, {0.9, 0.05, 0.05}, 0.3,
                              &solver_rng)
          .value();
  EXPECT_GE(plan.selections[0].jq, 0.9 - 1e-9);
  // And the rare labels also benefit from their confident priors.
  EXPECT_GE(plan.selections[1].jq, 0.95 - 1e-9);
}

TEST(MultiLabelTest, RejectsNegativeBudget) {
  Rng rng(59);
  McJury candidates;
  candidates.Add({"c", RandomConfusion(&rng, 2), 0.1});
  Rng solver_rng(1);
  EXPECT_FALSE(PlanMultiLabelSelection(candidates, UniformMcPrior(2), -1.0,
                                       &solver_rng)
                   .ok());
}

// ------------------------------------------------------------------ JSP

TEST(McJspTest, AnnealingRespectsBudgetAndFindsGoodJuries) {
  Rng rng(41);
  McJspInstance instance;
  instance.budget = 2.0;
  instance.prior = UniformMcPrior(3);
  for (int i = 0; i < 8; ++i) {
    instance.candidates.emplace_back("c" + std::to_string(i),
                                     RandomConfusion(&rng, 3),
                                     rng.Uniform(0.4, 1.2));
  }
  Rng sa_rng(5);
  const auto sa = SolveMcAnnealing(instance, &sa_rng).value();
  EXPECT_LE(sa.cost, instance.budget + 1e-12);

  const auto exact = SolveMcExhaustive(instance).value();
  EXPECT_LE(exact.cost, instance.budget + 1e-12);
  EXPECT_GE(sa.jq, exact.jq - 0.05);
}

TEST(McJspTest, EmptyBudgetFallsBackToPrior) {
  Rng rng(43);
  McJspInstance instance;
  instance.budget = 0.0;
  instance.prior = {0.6, 0.25, 0.15};
  instance.candidates.emplace_back("c", RandomConfusion(&rng, 3), 1.0);
  Rng sa_rng(7);
  const auto solution = SolveMcAnnealing(instance, &sa_rng).value();
  EXPECT_TRUE(solution.selected.empty());
  EXPECT_DOUBLE_EQ(solution.jq, 0.6);
}

TEST(McJspTest, ValidatesInstances) {
  McJspInstance bad;
  bad.budget = -1.0;
  bad.prior = UniformMcPrior(2);
  Rng rng(1);
  EXPECT_FALSE(SolveMcAnnealing(bad, &rng).ok());
  McJspInstance mixed;
  mixed.budget = 1.0;
  mixed.prior = UniformMcPrior(2);
  mixed.candidates.emplace_back("a", ConfusionMatrix::FromQuality(0.8, 2),
                                0.1);
  mixed.candidates.emplace_back("b", ConfusionMatrix::FromQuality(0.8, 3),
                                0.1);
  EXPECT_FALSE(SolveMcAnnealing(mixed, &rng).ok());
}

}  // namespace
}  // namespace jury::mc
