// Property tests for candidate-frontier pre-selection: exact mode must be
// bit-identical to the full O(N) scan — same selected indices, same jq
// double, same cost — for every objective with a monotone score key,
// across shard sizes, slate depths, thread counts, and SIMD levels. The
// lossy consumers (annealing polish ordering, branch-and-bound ordering)
// must stay within their documented quality contracts.

#include <cstddef>
#include <vector>

#include "gtest/gtest.h"
#include "core/annealing.h"
#include "core/branch_bound.h"
#include "core/frontier.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "model/sharded_pool.h"
#include "model/worker_pool_view.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/simd_dispatch.h"

namespace jury {
namespace {

using jury::testing::RandomPool;

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : previous_(simd::ActiveLevel()), ok_(simd::SetLevel(level)) {}
  ~ScopedSimdLevel() { simd::SetLevel(previous_); }
  bool ok() const { return ok_; }

 private:
  simd::Level previous_;
  bool ok_;
};

std::vector<simd::Level> TestableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::Avx2Available()) levels.push_back(simd::Level::kAvx2);
  return levels;
}

JspInstance MakeInstance(Rng* rng, int n, double budget) {
  JspInstance instance;
  instance.candidates = RandomPool(rng, n, 0.0, 1.0, 0.01, 0.5);
  instance.budget = budget;
  instance.alpha = 0.5;
  return instance;
}

TEST(FrontierTest, GreedyMarginalGainExactModeIsBitIdentical) {
  Rng rng(8801);
  const JspInstance instance = MakeInstance(&rng, 600, 1.0);
  const WorkerPoolView view(instance.candidates);
  const BucketBvObjective bv{BucketJqOptions{}};
  const MajorityObjective mv;

  GreedyOptions full_options;
  for (const simd::Level level : TestableLevels()) {
    ScopedSimdLevel scoped(level);
    ASSERT_TRUE(scoped.ok());
    for (const JqObjective* objective :
         std::initializer_list<const JqObjective*>{&bv, &mv}) {
      const auto full =
          SolveGreedyMarginalGain(instance, view, *objective, full_options);
      ASSERT_TRUE(full.ok());
      for (const std::size_t shard_size :
           {std::size_t{16}, std::size_t{64}, instance.candidates.size()}) {
        for (const std::size_t k : {std::size_t{2}, std::size_t{8}}) {
          for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
            ShardedPoolOptions pool_options;
            pool_options.shard_size = shard_size;
            pool_options.slate_k = 16;
            const ShardedWorkerPool pool(&view, pool_options);
            GreedyOptions options;
            options.num_threads = threads;
            options.frontier_k = k;
            options.sharded_pool = &pool;
            FrontierScanStats stats;
            options.frontier_stats = &stats;
            const auto frontier =
                SolveGreedyMarginalGain(instance, view, *objective, options);
            ASSERT_TRUE(frontier.ok());
            EXPECT_EQ(frontier.value().selected, full.value().selected)
                << objective->name() << " shard=" << shard_size << " k=" << k
                << " threads=" << threads
                << " simd=" << simd::LevelName(level);
            EXPECT_EQ(frontier.value().jq, full.value().jq);
            EXPECT_EQ(frontier.value().cost, full.value().cost);
            EXPECT_GT(stats.scans, 0u);
          }
        }
      }
    }
  }
}

TEST(FrontierTest, SelectAddMatchesFullScanArgmaxUnderPruning) {
  // Direct seam check: FrontierSelectAdd vs a frontier scan forced to the
  // full-pool shard (shard_size = n, slate covers everything = a full
  // scan). With small slates and exact mode the pick must agree bit for
  // bit, and on these smooth random pools some scans should retain
  // pruning (the proof doing real work at least once).
  Rng rng(8803);
  const JspInstance instance = MakeInstance(&rng, 512, 0.4);
  const WorkerPoolView view(instance.candidates);
  const BucketBvObjective objective{BucketJqOptions{}};
  auto session = objective.StartSession(view, instance.alpha, true);
  ASSERT_NE(session, nullptr);

  ShardedPoolOptions small_options;
  small_options.shard_size = 32;
  small_options.slate_k = 4;
  const ShardedWorkerPool small(&view, small_options);
  ShardedPoolOptions whole_options;
  whole_options.shard_size = instance.candidates.size();
  whole_options.slate_k = instance.candidates.size();
  const ShardedWorkerPool whole(&view, whole_options);

  std::vector<char> excluded(instance.candidates.size(), 0);
  FrontierOptions pruned_scan;
  pruned_scan.k = 4;
  FrontierOptions full_scan;
  full_scan.k = instance.candidates.size();
  FrontierScanStats stats;
  const auto key = ShardedWorkerPool::KeyColumn::kNormQuality;

  double jury_cost = 0.0;
  for (int round = 0; round < 8; ++round) {
    const FrontierPick pruned =
        FrontierSelectAdd(*session, small, key, excluded, jury_cost,
                          instance.budget, pruned_scan, &stats);
    const FrontierPick full =
        FrontierSelectAdd(*session, whole, key, excluded, jury_cost,
                          instance.budget, full_scan, nullptr);
    ASSERT_EQ(pruned.found, full.found) << "round " << round;
    if (!full.found) break;
    EXPECT_TRUE(pruned.exact_proven) << "round " << round;
    EXPECT_EQ(pruned.best_index, full.best_index) << "round " << round;
    EXPECT_EQ(pruned.best_score, full.best_score) << "round " << round;
    excluded[full.best_index] = 1;
    jury_cost += view.cost()[full.best_index];
    session->CommitAdd(view.worker(full.best_index), full.best_score);
  }
  EXPECT_GT(stats.candidates_scanned, 0u);
  EXPECT_GT(stats.exactness_proofs, 0u) << "pruning never held";
}

TEST(FrontierTest, AnnealingPolishIdenticalWithFrontier) {
  // The polish's adds pass uses the frontier in exact mode, so a polished
  // annealing solve must return the identical jury with and without the
  // sharded pool wired (same seed, same trajectory).
  Rng rng_base(8805);
  const JspInstance instance = MakeInstance(&rng_base, 300, 0.8);
  const WorkerPoolView view(instance.candidates);
  const BucketBvObjective objective{BucketJqOptions{}};
  ShardedPoolOptions pool_options;
  pool_options.shard_size = 64;
  pool_options.slate_k = 16;
  const ShardedWorkerPool pool(&view, pool_options);

  Rng rng_full(424242);
  AnnealingOptions full_options;
  const auto full =
      SolveAnnealing(instance, view, objective, &rng_full, full_options);
  ASSERT_TRUE(full.ok());

  Rng rng_frontier(424242);
  AnnealingOptions frontier_options;
  frontier_options.frontier_k = 8;
  frontier_options.sharded_pool = &pool;
  FrontierScanStats stats;
  frontier_options.frontier_stats = &stats;
  const auto frontier = SolveAnnealing(instance, view, objective,
                                       &rng_frontier, frontier_options);
  ASSERT_TRUE(frontier.ok());
  EXPECT_EQ(frontier.value().selected, full.value().selected);
  EXPECT_EQ(frontier.value().jq, full.value().jq);
  EXPECT_EQ(frontier.value().cost, full.value().cost);
}

TEST(FrontierTest, BranchBoundOrderingKeepsOptimality) {
  // Frontier ordering is a search heuristic, not a bound: B&B stays exact,
  // so the frontier-ordered search must reach the same optimum (JQ equal
  // to well within evaluation noise; the certified optimum is unique up
  // to score ties).
  Rng rng(8807);
  JspInstance instance;
  instance.candidates = RandomPool(&rng, 24, 0.3, 1.0, 0.05, 0.4);
  instance.budget = 0.8;
  instance.alpha = 0.5;
  const WorkerPoolView view(instance.candidates);
  const BucketBvObjective objective{BucketJqOptions{}};
  ShardedPoolOptions pool_options;
  pool_options.shard_size = 8;
  pool_options.slate_k = 8;
  const ShardedWorkerPool pool(&view, pool_options);

  BranchBoundOptions plain_options;
  const auto plain =
      SolveBranchAndBound(instance, view, objective, plain_options);
  ASSERT_TRUE(plain.ok());

  BranchBoundOptions frontier_options;
  frontier_options.frontier_k = 4;
  frontier_options.sharded_pool = &pool;
  const auto ordered =
      SolveBranchAndBound(instance, view, objective, frontier_options);
  ASSERT_TRUE(ordered.ok());
  EXPECT_NEAR(ordered.value().jq, plain.value().jq, 1e-9);
  EXPECT_LE(ordered.value().cost, instance.budget);
}

}  // namespace
}  // namespace jury
