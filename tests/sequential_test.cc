#include <cmath>

#include "gtest/gtest.h"
#include "core/sequential.h"
#include "crowd/vote_sim.h"
#include "strategy/bayesian.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/stats.h"

namespace jury {
namespace {

using jury::testing::RandomJury;

TEST(SequentialDecisionTest, StartsAtThePrior) {
  SequentialDecision d(0.7);
  EXPECT_NEAR(d.PosteriorZero(), 0.7, 1e-12);
  EXPECT_EQ(d.CurrentAnswer(), 0);
  EXPECT_NEAR(d.Confidence(), 0.7, 1e-12);
  EXPECT_EQ(d.votes_seen(), 0u);
}

TEST(SequentialDecisionTest, SingleVoteMatchesBayesRule) {
  // Pr(t=0 | one 0-vote from quality q) = alpha q / (alpha q + (1-a)(1-q)).
  for (double alpha : {0.3, 0.5, 0.8}) {
    for (double q : {0.55, 0.7, 0.9}) {
      SequentialDecision d(alpha);
      d.Observe(q, 0);
      const double expected =
          alpha * q / (alpha * q + (1.0 - alpha) * (1.0 - q));
      EXPECT_NEAR(d.PosteriorZero(), expected, 1e-12);
    }
  }
}

TEST(SequentialDecisionTest, AgreesWithBatchBvOnEveryPrefix) {
  Rng rng(3);
  const BayesianVoting bv;
  for (int trial = 0; trial < 100; ++trial) {
    const Jury jury = RandomJury(&rng, 8, 0.4, 0.95);
    const double alpha = rng.Uniform(0.1, 0.9);
    Votes votes(8);
    for (auto& v : votes) v = static_cast<std::uint8_t>(rng.UniformInt(2));

    SequentialDecision d(alpha);
    for (std::size_t k = 0; k < 8; ++k) {
      d.Observe(jury.worker(k).quality, votes[k]);
      // Batch BV over the prefix must give the same answer.
      Jury prefix_jury;
      Votes prefix_votes;
      for (std::size_t i = 0; i <= k; ++i) {
        prefix_jury.Add(jury.worker(i));
        prefix_votes.push_back(votes[i]);
      }
      const int batch =
          bv.ProbZero(prefix_jury, prefix_votes, alpha) >= 1.0 ? 0 : 1;
      EXPECT_EQ(d.CurrentAnswer(), batch) << "prefix " << k;
    }
  }
}

TEST(SequentialDecisionTest, OpposingVotesCancel) {
  SequentialDecision d(0.5);
  d.Observe(0.8, 0);
  d.Observe(0.8, 1);
  EXPECT_NEAR(d.PosteriorZero(), 0.5, 1e-12);
  EXPECT_EQ(d.votes_seen(), 2u);
}

TEST(SequentialPolicyTest, StopsAtConfidence) {
  std::vector<Worker> stream(10, Worker("w", 0.9, 0.1));
  SequentialConfig config;
  config.confidence_threshold = 0.95;
  const auto outcome =
      RunSequentialPolicy(
          stream, [](const Worker&, std::size_t) { return 0; }, config)
          .value();
  EXPECT_TRUE(outcome.stopped_by_confidence);
  EXPECT_GE(outcome.confidence, 0.95);
  // Two agreeing 0.9 votes reach 0.9878 > 0.95.
  EXPECT_EQ(outcome.votes_used, 2u);
  EXPECT_EQ(outcome.answer, 0);
  EXPECT_NEAR(outcome.spent, 0.2, 1e-12);
}

TEST(SequentialPolicyTest, RespectsBudget) {
  std::vector<Worker> stream(10, Worker("w", 0.55, 0.3));
  SequentialConfig config;
  config.confidence_threshold = 0.999;  // unreachable within budget
  config.budget = 1.0;
  const auto outcome =
      RunSequentialPolicy(
          stream, [](const Worker&, std::size_t) { return 0; }, config)
          .value();
  EXPECT_FALSE(outcome.stopped_by_confidence);
  EXPECT_EQ(outcome.votes_used, 3u);  // 4th vote would exceed the budget
  EXPECT_LE(outcome.spent, 1.0 + 1e-12);
}

TEST(SequentialPolicyTest, RespectsMaxVotes) {
  std::vector<Worker> stream(10, Worker("w", 0.6, 0.0));
  SequentialConfig config;
  config.confidence_threshold = 1.0;
  config.max_votes = 4;
  const auto outcome =
      RunSequentialPolicy(
          stream, [](const Worker&, std::size_t) { return 1; }, config)
          .value();
  EXPECT_EQ(outcome.votes_used, 4u);
  EXPECT_EQ(outcome.answer, 1);
}

TEST(SequentialPolicyTest, ConfidentPriorBuysNothing) {
  std::vector<Worker> stream(5, Worker("w", 0.9, 1.0));
  SequentialConfig config;
  config.alpha = 0.99;
  config.confidence_threshold = 0.95;
  const auto outcome =
      RunSequentialPolicy(
          stream, [](const Worker&, std::size_t) { return 0; }, config)
          .value();
  EXPECT_EQ(outcome.votes_used, 0u);
  EXPECT_TRUE(outcome.stopped_by_confidence);
  EXPECT_DOUBLE_EQ(outcome.spent, 0.0);
}

TEST(SequentialPolicyTest, ValidatesInputs) {
  std::vector<Worker> stream(3, Worker("w", 0.7, 0.1));
  SequentialConfig bad;
  bad.confidence_threshold = 0.3;
  EXPECT_FALSE(RunSequentialPolicy(
                   stream, [](const Worker&, std::size_t) { return 0; }, bad)
                   .ok());
  EXPECT_FALSE(RunSequentialPolicy(stream, nullptr, {}).ok());
  SequentialConfig ok;
  EXPECT_FALSE(RunSequentialPolicy(
                   stream, [](const Worker&, std::size_t) { return 7; }, ok)
                   .ok());
}

TEST(SequentialPolicyTest, ConfidenceTargetBoundsRealizedAccuracy) {
  // When the run stops by confidence c, Pr[correct] >= c — check
  // empirically across many simulated tasks.
  Rng rng(11);
  const double threshold = 0.9;
  int correct = 0;
  int confident_stops = 0;
  for (int t = 0; t < 4000; ++t) {
    const int truth = crowd::SampleTruth(0.5, &rng);
    std::vector<Worker> stream;
    for (int i = 0; i < 15; ++i) {
      stream.emplace_back("w", rng.Uniform(0.55, 0.9), 0.0);
    }
    SequentialConfig config;
    config.confidence_threshold = threshold;
    const auto outcome =
        RunSequentialPolicy(
            stream,
            [&](const Worker& w, std::size_t) {
              return crowd::SimulateVote(w.quality, truth, &rng);
            },
            config)
            .value();
    if (outcome.stopped_by_confidence) {
      ++confident_stops;
      correct += (outcome.answer == truth);
    }
  }
  ASSERT_GT(confident_stops, 1000);
  EXPECT_GE(static_cast<double>(correct) / confident_stops, threshold - 0.02);
}

}  // namespace
}  // namespace jury
