#include "gtest/gtest.h"
#include "crowd/dawid_skene.h"
#include "crowd/estimators.h"
#include "util/rng.h"

namespace jury::crowd {
namespace {

Campaign DenseCampaign(Rng* rng, const std::vector<double>& quality,
                       int num_tasks) {
  CampaignConfig config;
  config.num_tasks = num_tasks;
  config.tasks_per_hit = num_tasks;  // one big HIT: everyone answers all
  config.assignments_per_hit = static_cast<int>(quality.size());
  config.num_workers = static_cast<int>(quality.size());
  const std::vector<int> quota(quality.size(), 1);
  return SimulateCampaign(config, quality, quota, rng).value();
}

TEST(DawidSkeneTest, RecoversQualitiesWithoutGroundTruth) {
  Rng rng(1);
  const std::vector<double> quality{0.92, 0.85, 0.75, 0.65, 0.6, 0.55, 0.8};
  const Campaign campaign = DenseCampaign(&rng, quality, 500);
  const auto result = RunDawidSkene(campaign).value();
  ASSERT_EQ(result.quality.size(), quality.size());
  for (std::size_t w = 0; w < quality.size(); ++w) {
    EXPECT_NEAR(result.quality[w], quality[w], 0.08) << "worker " << w;
  }
}

TEST(DawidSkeneTest, PosteriorsPredictTruthBetterThanChance) {
  Rng rng(3);
  const std::vector<double> quality{0.9, 0.8, 0.7, 0.7, 0.6};
  const Campaign campaign = DenseCampaign(&rng, quality, 400);
  const auto result = RunDawidSkene(campaign).value();
  int correct = 0;
  for (std::size_t t = 0; t < campaign.tasks.size(); ++t) {
    const int decided = result.posterior_zero[t] >= 0.5 ? 0 : 1;
    correct += (decided == campaign.tasks[t].truth);
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(campaign.tasks.size());
  // Five workers with mean quality 0.74: BV with perfectly known qualities
  // achieves ~0.93; EM's estimated qualities land close behind.
  EXPECT_GT(accuracy, 0.85);
}

TEST(DawidSkeneTest, BeatsOrMatchesSingleWorkerAccuracy) {
  Rng rng(5);
  const std::vector<double> quality{0.85, 0.7, 0.7, 0.65, 0.6};
  const Campaign campaign = DenseCampaign(&rng, quality, 400);
  const auto em = RunDawidSkene(campaign).value();
  // EM-aggregated answers should beat the best individual worker's raw
  // agreement with the truth.
  int em_correct = 0;
  std::vector<int> worker_correct(quality.size(), 0);
  for (std::size_t t = 0; t < campaign.tasks.size(); ++t) {
    const int decided = em.posterior_zero[t] >= 0.5 ? 0 : 1;
    em_correct += (decided == campaign.tasks[t].truth);
    for (const Answer& a : campaign.tasks[t].answers) {
      worker_correct[a.worker] += (a.vote == campaign.tasks[t].truth);
    }
  }
  const int best_single =
      *std::max_element(worker_correct.begin(), worker_correct.end());
  EXPECT_GE(em_correct, best_single);
}

TEST(DawidSkeneTest, ConvergesAndReportsIterations) {
  Rng rng(7);
  const std::vector<double> quality{0.9, 0.8, 0.7};
  const Campaign campaign = DenseCampaign(&rng, quality, 200);
  const auto result = RunDawidSkene(campaign).value();
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.iterations, 2);
  EXPECT_LE(result.iterations, 100);
}

TEST(DawidSkeneTest, AgreesWithEmpiricalEstimatorOnEasyData) {
  // With high-quality workers the latent truths are essentially known, so
  // EM should land near the ground-truth-based empirical estimate.
  Rng rng(9);
  const std::vector<double> quality{0.95, 0.9, 0.88, 0.92};
  const Campaign campaign = DenseCampaign(&rng, quality, 300);
  const auto em = RunDawidSkene(campaign).value();
  const auto empirical = EstimateQualitiesEmpirical(campaign).value();
  for (std::size_t w = 0; w < quality.size(); ++w) {
    EXPECT_NEAR(em.quality[w], empirical[w], 0.03);
  }
}

TEST(DawidSkeneTest, ValidatesOptions) {
  Rng rng(11);
  const Campaign campaign = DenseCampaign(&rng, {0.8, 0.7}, 50);
  DawidSkeneOptions bad;
  bad.max_iterations = 0;
  EXPECT_FALSE(RunDawidSkene(campaign, bad).ok());
  DawidSkeneOptions bad_clamp;
  bad_clamp.clamp_lo = 0.9;
  bad_clamp.clamp_hi = 0.1;
  EXPECT_FALSE(RunDawidSkene(campaign, bad_clamp).ok());
  EXPECT_FALSE(RunDawidSkene(campaign, DawidSkeneOptions{}, 0.0).ok());
}

}  // namespace
}  // namespace jury::crowd
