#include <cstdio>
#include <fstream>

#include "gtest/gtest.h"
#include "model/worker_io.h"
#include "util/csv.h"

namespace jury {
namespace {

TEST(CsvTest, ParsesSimpleRows) {
  const auto rows = ParseCsv("a,b,c\n1,2,3\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, HandlesQuotesAndEscapes) {
  const auto rows = ParseCsv("\"x,y\",\"he said \"\"hi\"\"\"\n").value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "x,y");
  EXPECT_EQ(rows[0][1], "he said \"hi\"");
}

TEST(CsvTest, SkipsCommentsAndBlankLines) {
  const auto rows = ParseCsv("# comment\n\na,b\n\n# more\nc,d\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[1][0], "c");
}

TEST(CsvTest, EmptyCellsSurvive) {
  const auto rows = ParseCsv("a,,c\n,x,\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"", "x", ""}));
}

TEST(CsvTest, MissingFinalNewlineIsFine) {
  const auto rows = ParseCsv("a,b").value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvTest, CrLfLineEndings) {
  const auto rows = ParseCsv("a,b\r\nc,d\r\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], "d");
}

TEST(CsvTest, RejectsMalformedQuoting) {
  EXPECT_FALSE(ParseCsv("a\"b,c\n").ok());
  EXPECT_FALSE(ParseCsv("\"unterminated\n").ok());
}

TEST(CsvTest, MissingFileIsNotFound) {
  EXPECT_EQ(ReadCsvFile("/nonexistent/file.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(WorkerIoTest, ParsesWorkersWithHeader) {
  const auto workers =
      ParseWorkersCsv("id,quality,cost\nA,0.77,9\nB,0.7,5\n").value();
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[0].id, "A");
  EXPECT_DOUBLE_EQ(workers[0].quality, 0.77);
  EXPECT_DOUBLE_EQ(workers[1].cost, 5.0);
}

TEST(WorkerIoTest, HeaderIsOptional) {
  const auto workers = ParseWorkersCsv("A,0.77,9\n").value();
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0].id, "A");
}

TEST(WorkerIoTest, RejectsBadShapesAndValues) {
  EXPECT_FALSE(ParseWorkersCsv("A,0.77\n").ok());
  EXPECT_FALSE(ParseWorkersCsv("A,not-a-number,5\n").ok());
  EXPECT_FALSE(ParseWorkersCsv("A,1.5,5\n").ok());   // quality > 1
  EXPECT_FALSE(ParseWorkersCsv("A,0.7,-5\n").ok());  // negative cost
}

TEST(WorkerIoTest, RoundTripsThroughCsv) {
  const std::vector<Worker> original = {
      {"A", 0.77, 9.0}, {"with,comma", 0.5, 0.25}};
  // Note: WorkersToCsv does not quote; ids with commas are a caller error.
  const std::vector<Worker> simple = {{"A", 0.77, 9.0}, {"B", 0.5, 0.25}};
  const auto round = ParseWorkersCsv(WorkersToCsv(simple)).value();
  ASSERT_EQ(round.size(), simple.size());
  for (std::size_t i = 0; i < simple.size(); ++i) {
    EXPECT_EQ(round[i].id, simple[i].id);
    EXPECT_DOUBLE_EQ(round[i].quality, simple[i].quality);
    EXPECT_DOUBLE_EQ(round[i].cost, simple[i].cost);
  }
  (void)original;
}

TEST(WorkerIoTest, LoadsFromDisk) {
  const std::string path = ::testing::TempDir() + "/jury_workers_test.csv";
  {
    std::ofstream out(path);
    out << "id,quality,cost\n# a comment\nX,0.8,1.5\n";
  }
  const auto workers = LoadWorkersCsv(path).value();
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0].id, "X");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jury
