// The fault-injection sweep (util/fault_injection.h): after a warm-up run
// registers every `JURY_FAULT_POINT`, each site is armed in turn and a
// representative API workload is driven through it. The contract under
// test: an injected fault surfaces as a clean `ResourceExhausted` Status
// at the solve boundary — never an abort, never a wedged scheduler — and
// the very next run is bit-identical to the no-fault baseline. On top of
// that, `SolveMany`'s retry policy turns a transient injected fault into
// a success, while deterministic failures are never retried.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/solve.h"
#include "core/budget_table.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::RandomPool;

#if defined(JURYOPT_FAULT_INJECTION) && JURYOPT_FAULT_INJECTION
constexpr bool kFaultsCompiled = true;
#else
constexpr bool kFaultsCompiled = false;
#endif

std::vector<Worker> TestPool() {
  Rng rng(31);
  return RandomPool(&rng, 12, 0.55, 0.95, 0.05, 0.3);
}

std::vector<api::SolveRequest> WorkloadRequests() {
  std::vector<api::SolveRequest> requests;
  for (const char* solver : {"greedy-quality", "annealing", "optjs"}) {
    api::SolveRequest request;
    request.solver = solver;
    request.budget = 0.7;
    request.alpha = 0.5;
    request.rng_seed = 404;
    request.tuning.annealing.num_restarts = 2;
    request.tuning.annealing.num_threads = 4;
    request.tuning.greedy.num_threads = 4;
    request.tuning.optjs.num_threads = 4;
    request.tuning.optjs.annealing.num_restarts = 2;
    requests.push_back(std::move(request));
  }
  return requests;
}

/// One representative pass over the public surface: a parallel SolveMany
/// across three solver families plus a budget table. Every fault site in
/// the library is downstream of one of these. Returns the solutions so
/// the recovery check can compare runs bit-for-bit.
Result<std::vector<JspSolution>> RunWorkload() {
  std::vector<JspSolution> solutions;
  auto planned = api::PoolPlanContext::Plan(TestPool());
  JURY_RETURN_NOT_OK(planned.status());
  auto reports = planned.value().SolveMany(WorkloadRequests(), 4);
  JURY_RETURN_NOT_OK(reports.status());
  for (const api::SolveReport& report : reports.value()) {
    solutions.push_back(report.solution);
  }
  Rng rng(9);
  auto rows = BuildBudgetQualityTable(TestPool(), {0.3, 0.6, 0.9}, 0.5, &rng);
  JURY_RETURN_NOT_OK(rows.status());
  for (const BudgetQualityRow& row : rows.value()) {
    JspSolution solution;
    solution.selected = row.selected;
    solution.jq = row.jq;
    solution.cost = row.required;
    solutions.push_back(std::move(solution));
  }
  return solutions;
}

TEST(FaultInjectionTest, SweepEverySiteCleanStatusAndFullRecovery) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  FaultInjector& injector = FaultInjector::Global();

  // Warm-up: registers every site and doubles as the baseline.
  auto baseline = RunWorkload();
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::vector<std::string> sites = injector.Sites();
  ASSERT_FALSE(sites.empty());
  // The sites the workload must reach (others, like the scheduler's
  // spawn hook, depend on thread-pool warm-up and are swept if present).
  for (const char* expected : {"plan.lease_instance", "eval.session_start"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), expected), sites.end())
        << "site never registered: " << expected;
  }

  for (const std::string& site : sites) {
    for (const std::uint64_t hit : {std::uint64_t{1}, std::uint64_t{2}}) {
      injector.Arm(site, hit);
      auto faulted = RunWorkload();
      // The armed hit may or may not be reached; both outcomes are fine.
      // What is not fine: any status other than the transient class, or
      // (enforced by the process surviving at all) an abort.
      if (!faulted.ok()) {
        EXPECT_EQ(faulted.status().code(), StatusCode::kResourceExhausted)
            << site << " hit " << hit << ": " << faulted.status();
      }
      injector.Disarm();  // drop the trigger if the run never reached it
      auto recovered = RunWorkload();
      ASSERT_TRUE(recovered.ok())
          << site << " hit " << hit << " left damage: " << recovered.status();
      ASSERT_EQ(recovered.value().size(), baseline.value().size()) << site;
      for (std::size_t i = 0; i < baseline.value().size(); ++i) {
        EXPECT_EQ(recovered.value()[i].selected,
                  baseline.value()[i].selected)
            << site << " hit " << hit << " solution " << i;
        EXPECT_EQ(recovered.value()[i].jq, baseline.value()[i].jq)
            << site << " hit " << hit << " solution " << i;
      }
    }
  }
}

TEST(FaultInjectionTest, InjectedCountAdvancesWhenAFaultFires) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  FaultInjector& injector = FaultInjector::Global();
  auto warmup = RunWorkload();
  ASSERT_TRUE(warmup.ok()) << warmup.status();
  const std::uint64_t before = injector.injected_count();
  injector.Arm("plan.lease_instance", 1);
  auto faulted = RunWorkload();
  injector.Disarm();
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(injector.injected_count(), before + 1);
}

TEST(FaultInjectionTest, SolveManyRetriesTransientInjectedFaults) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  auto context = api::PoolPlanContext::Plan(TestPool()).value();
  const std::vector<api::SolveRequest> requests = WorkloadRequests();

  api::SolveManyOptions options;
  options.num_threads = 1;  // serial: the faulted request is deterministic
  options.retry.max_attempts = 2;
  api::RetryStats stats;
  options.retry_stats = &stats;

  // The second instance lease (request #2's first attempt) fails; its
  // retry re-leases and succeeds, so the batch as a whole succeeds.
  FaultInjector::Global().Arm("plan.lease_instance", 2);
  auto reports = context.SolveMany(requests, options);
  FaultInjector::Global().Disarm();
  ASSERT_TRUE(reports.ok()) << reports.status();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.attempts, requests.size() + 1);
  // The retried report owns up to its second attempt; first-try reports
  // keep their historical stats layout.
  std::size_t with_attempts = 0;
  for (const api::SolveReport& report : reports.value()) {
    const auto it = report.stats.find("attempts");
    if (it != report.stats.end()) {
      ++with_attempts;
      EXPECT_EQ(it->second, 2.0);
    }
  }
  EXPECT_EQ(with_attempts, 1u);
}

TEST(FaultInjectionTest, DeterministicFailuresAreNeverRetried) {
  if (!kFaultsCompiled) GTEST_SKIP() << "fault injection compiled out";
  auto context = api::PoolPlanContext::Plan(TestPool()).value();
  api::SolveRequest request;
  request.solver = "no-such-solver";
  request.budget = 0.5;

  api::SolveManyOptions options;
  options.num_threads = 1;
  options.retry.max_attempts = 5;
  api::RetryStats stats;
  options.retry_stats = &stats;
  auto reports =
      context.SolveMany(std::vector<api::SolveRequest>{request}, options);
  ASSERT_FALSE(reports.ok());
  EXPECT_EQ(reports.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(FaultInjectionTest, CompiledOutBuildsStillLink) {
  // The macro must compile to nothing without the define; this test only
  // documents that the disabled configuration is part of the matrix.
  JURY_FAULT_POINT("test.noop_site");
  SUCCEED();
}

}  // namespace
}  // namespace jury
