#include <tuple>

#include "gtest/gtest.h"
#include "jq/exact.h"
#include "jq/weighted.h"
#include "model/worker.h"
#include "strategy/voting_strategy.h"
#include "test_util.h"
#include "util/math.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::RandomJury;

class WeightedJqAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(WeightedJqAgreementTest, TrueBeliefsReproduceBvExactly) {
  const auto [n, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 6863 +
          static_cast<std::uint64_t>(n));
  const Jury jury = RandomJury(&rng, n, 0.3, 0.99);
  EXPECT_NEAR(MiscalibratedBvJq(jury, jury.qualities(), alpha).value(),
              ExactJqBv(jury, alpha).value(), 1e-10);
}

TEST_P(WeightedJqAgreementTest, MatchesBruteForceForRandomWeights) {
  const auto [n, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 9419 +
          static_cast<std::uint64_t>(n));
  const Jury jury = RandomJury(&rng, n, 0.3, 0.99);
  std::vector<double> weights;
  for (int i = 0; i < n; ++i) weights.push_back(rng.Uniform(-2.0, 2.0));
  const double bias = rng.Uniform(-1.0, 1.0);

  // Brute-force reference via a throwaway strategy.
  class ThresholdStrategy final : public VotingStrategy {
   public:
    ThresholdStrategy(const std::vector<double>& w, double b)
        : w_(w), b_(b) {}
    std::string name() const override { return "THRESH"; }
    StrategyKind kind() const override {
      return StrategyKind::kDeterministic;
    }
    double ProbZero(const Jury&, const Votes& votes,
                    double) const override {
      double score = b_;
      for (std::size_t i = 0; i < votes.size(); ++i) {
        score += (votes[i] == 0 ? w_[i] : -w_[i]);
      }
      return score >= 0.0 ? 1.0 : 0.0;
    }

   private:
    const std::vector<double>& w_;
    double b_;
  };
  const ThresholdStrategy reference(weights, bias);
  EXPECT_NEAR(WeightedThresholdJq(jury, weights, bias, alpha).value(),
              ExactJq(jury, reference, alpha).value(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedJqAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 7, 10),
                       ::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(1, 2)));

TEST(MiscalibratedBvTest, NoBeliefBeatsTheTruth) {
  // Corollary 1: BV with the true qualities dominates every belief vector.
  Rng rng(1);
  for (int trial = 0; trial < 40; ++trial) {
    const Jury jury = RandomJury(&rng, 7, 0.4, 0.95);
    const double alpha = rng.Uniform(0.2, 0.8);
    const double truth_jq = ExactJqBv(jury, alpha).value();
    std::vector<double> believed;
    for (int i = 0; i < 7; ++i) believed.push_back(rng.Uniform(0.05, 0.99));
    EXPECT_LE(MiscalibratedBvJq(jury, believed, alpha).value(),
              truth_jq + 1e-10);
  }
}

TEST(MiscalibratedBvTest, SmallNoiseCostsLittle) {
  Rng rng(3);
  double total_loss = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const Jury jury = RandomJury(&rng, 9, 0.55, 0.9);
    const double truth_jq = ExactJqBv(jury, 0.5).value();
    std::vector<double> believed;
    for (double q : jury.qualities()) {
      believed.push_back(Clamp(q + rng.Gaussian(0.0, 0.02), 0.05, 0.99));
    }
    total_loss +=
        truth_jq - MiscalibratedBvJq(jury, believed, 0.5).value();
  }
  EXPECT_LT(total_loss / 20.0, 0.01);  // 2% quality noise ~ <1% JQ loss
}

TEST(MiscalibratedBvTest, AdversarialBeliefsAreCostly) {
  // Believing the inverse of the truth flips every weight: the rule then
  // votes against the evidence, landing at 1 - JQ(BV) by symmetry.
  const Jury jury = Jury::FromQualities({0.9, 0.8, 0.7});
  const double truth_jq = ExactJqBv(jury, 0.5).value();
  std::vector<double> inverted;
  for (double q : jury.qualities()) inverted.push_back(1.0 - q);
  EXPECT_NEAR(MiscalibratedBvJq(jury, inverted, 0.5).value(),
              1.0 - truth_jq, 1e-10);
}

TEST(MiscalibratedBvTest, ZeroWeightsFollowThePriorTieBreak) {
  // All-0.5 beliefs zero every weight: the rule always answers the
  // prior's pick (ties to 0 at alpha = 0.5).
  const Jury jury = Jury::FromQualities({0.9, 0.8});
  const std::vector<double> agnostic(2, 0.5);
  EXPECT_NEAR(MiscalibratedBvJq(jury, agnostic, 0.5).value(), 0.5, 1e-12);
  EXPECT_NEAR(MiscalibratedBvJq(jury, agnostic, 0.8).value(), 0.8, 1e-12);
}

TEST(WeightedJqTest, ValidatesInputs) {
  const Jury jury = Jury::FromQualities({0.7, 0.8});
  EXPECT_FALSE(WeightedThresholdJq(jury, {1.0}, 0.0, 0.5).ok());
  EXPECT_FALSE(WeightedThresholdJq(Jury(), {}, 0.0, 0.5).ok());
  EXPECT_FALSE(WeightedThresholdJq(jury, {1.0, 1.0}, 0.0, 1.5).ok());
  EXPECT_FALSE(MiscalibratedBvJq(jury, {0.7}, 0.5).ok());
  EXPECT_FALSE(MiscalibratedBvJq(jury, {0.7, 1.5}, 0.5).ok());
  WeightedJqOptions bad;
  bad.key_epsilon = -1.0;
  EXPECT_FALSE(WeightedThresholdJq(jury, {1.0, 1.0}, 0.0, 0.5, bad).ok());
}

TEST(WeightedJqTest, RepeatedWeightsStayPolynomial) {
  // 80 workers sharing one weight: keys collapse to 81 values.
  const Jury jury = Jury::FromQualities(std::vector<double>(80, 0.65));
  const std::vector<double> weights(80, 1.0);
  WeightedJqOptions options;
  options.max_keys = 200;
  EXPECT_TRUE(WeightedThresholdJq(jury, weights, 0.0, 0.5, options).ok());
}

TEST(WeightedJqTest, KeyBudgetIsEnforced) {
  Rng rng(7);
  const Jury jury = RandomJury(&rng, 26, 0.5, 0.99);
  std::vector<double> weights;
  for (int i = 0; i < 26; ++i) weights.push_back(rng.Uniform(0.1, 3.0));
  WeightedJqOptions options;
  options.max_keys = 500;
  EXPECT_EQ(
      WeightedThresholdJq(jury, weights, 0.0, 0.5, options).status().code(),
      StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace jury
