// Contract tests of the unified solve API (src/api/): the SolverRegistry,
// the SolveRequest/SolveReport facade, and the reusable PoolPlanContext.
//
// The central claims, property-tested over seeded instances:
//  * every registered solver returns the *bit-identical* jury through the
//    new SolveRequest path and the legacy free function;
//  * SolveMany over shuffled request batches is order- and
//    thread-count-invariant;
//  * unknown solver names and invalid options surface as non-OK Status —
//    never aborts.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "api/registry.h"
#include "api/solve.h"
#include "core/annealing.h"
#include "core/branch_bound.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/mvjs.h"
#include "core/optjs.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/stats_registry.h"

namespace jury::api {
namespace {

using jury::testing::RandomPool;

std::vector<std::vector<Worker>> SeededPools(int count, int n) {
  std::vector<std::vector<Worker>> pools;
  Rng rng(20150323);
  for (int i = 0; i < count; ++i) {
    Rng pool_rng = rng.Fork();
    pools.push_back(RandomPool(&pool_rng, n, 0.5, 0.95, 0.05, 0.5));
  }
  return pools;
}

/// The legacy call the registry adapter for `name` must match bit-for-bit.
Result<JspSolution> LegacySolve(const std::string& name,
                                const JspInstance& instance,
                                const SolveRequest& request) {
  if (name == "optjs") {
    Rng rng(request.rng_seed);
    return SolveOptjs(instance, &rng, request.tuning.optjs);
  }
  if (name == "mvjs") {
    Rng rng(request.rng_seed);
    return SolveMvjs(instance, &rng, request.tuning.mvjs);
  }
  auto objective = MakeObjective(request.tuning);
  if (!objective.ok()) return objective.status();
  if (name == "annealing") {
    Rng rng(request.rng_seed);
    return SolveAnnealing(instance, *objective.value(), &rng,
                          request.tuning.annealing);
  }
  if (name == "exhaustive") {
    return SolveExhaustive(instance, *objective.value(),
                           request.tuning.exhaustive);
  }
  if (name == "greedy-quality") {
    return SolveGreedyByQuality(instance, *objective.value(),
                                request.tuning.greedy);
  }
  if (name == "greedy-value") {
    return SolveGreedyByValuePerCost(instance, *objective.value(),
                                     request.tuning.greedy);
  }
  if (name == "greedy-mg") {
    return SolveGreedyMarginalGain(instance, *objective.value(),
                                   request.tuning.greedy);
  }
  if (name == "odd-top-k") {
    return SolveOddTopK(instance, *objective.value(), request.tuning.greedy);
  }
  if (name == "branch-bound") {
    return SolveBranchAndBound(instance, *objective.value(),
                               request.tuning.branch_bound);
  }
  return Status::NotFound("test has no legacy mapping for '" + name + "'");
}

TEST(RegistryTest, NamesAreStableAndResolvable) {
  const std::vector<std::string> names = RegisteredSolverNames();
  const std::vector<std::string> expected = {
      "annealing",   "exhaustive", "greedy-quality", "greedy-value",
      "greedy-mg",   "odd-top-k",  "branch-bound",   "optjs",
      "mvjs"};
  EXPECT_EQ(names, expected);
  for (const std::string& name : names) {
    auto solver = FindSolver(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_EQ(solver.value()->name(), name);
  }
}

TEST(RegistryTest, UnknownSolverIsNotFoundNotAbort) {
  EXPECT_EQ(FindSolver("no-such-solver").status().code(),
            StatusCode::kNotFound);
  auto context =
      PoolPlanContext::Plan(jury::testing::Figure1Workers()).value();
  SolveRequest request;
  request.solver = "no-such-solver";
  request.budget = 15.0;
  EXPECT_EQ(context.Solve(request).status().code(), StatusCode::kNotFound);
}

class RegistryContractTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllSolvers, RegistryContractTest,
                         ::testing::ValuesIn(RegisteredSolverNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

/// (a) of the registry contract: the SolveRequest path equals the legacy
/// free function bit-for-bit on seeded instances.
TEST_P(RegistryContractTest, MatchesLegacyFreeFunctionBitForBit) {
  const std::string name = GetParam();
  for (const std::vector<Worker>& pool : SeededPools(5, 10)) {
    auto context = PoolPlanContext::Plan(pool).value();
    for (const double budget : {0.25, 0.8}) {
      for (const std::uint64_t seed : {11ull, 20150323ull}) {
        SolveRequest request;
        request.solver = name;
        request.budget = budget;
        request.alpha = 0.4;
        request.rng_seed = seed;
        if (seed == 11ull) {
          // Cover OPTJS's annealing-plus-fallbacks branch too (N = 10
          // takes the exhaustive shortcut at the default threshold).
          request.tuning.optjs.exhaustive_threshold = 4;
        }
        auto report = context.Solve(request);
        ASSERT_TRUE(report.ok()) << name << ": " << report.status();
        EXPECT_EQ(report.value().solver, name);

        JspInstance instance;
        instance.candidates = pool;
        instance.budget = budget;
        instance.alpha = 0.4;
        auto legacy = LegacySolve(name, instance, request);
        ASSERT_TRUE(legacy.ok()) << name << ": " << legacy.status();
        EXPECT_EQ(report.value().solution.selected, legacy.value().selected)
            << name << " B=" << budget << " seed=" << seed;
        EXPECT_EQ(report.value().solution.jq, legacy.value().jq);
        EXPECT_EQ(report.value().solution.cost, legacy.value().cost);
      }
    }
  }
}

/// The registry path is bit-deterministic in the thread count, like every
/// core solver (the PR 2-4 invariant carried through the facade).
TEST_P(RegistryContractTest, ThreadCountInvariant) {
  const std::string name = GetParam();
  const auto pools = SeededPools(3, 10);
  std::vector<JspSolution> reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    std::size_t at = 0;
    for (const std::vector<Worker>& pool : pools) {
      auto context = PoolPlanContext::Plan(pool).value();
      SolveRequest request;
      request.solver = name;
      request.budget = 0.6;
      request.alpha = 0.5;
      request.rng_seed = 99;
      request.tuning.annealing.num_restarts = 4;  // exercise the chains
      request.tuning.annealing.num_threads = threads;
      request.tuning.greedy.num_threads = threads;
      request.tuning.exhaustive.num_threads = threads;
      request.tuning.optjs.num_threads = threads;
      request.tuning.optjs.annealing.num_restarts = 4;
      request.tuning.mvjs.annealing.num_restarts = 4;
      request.tuning.mvjs.annealing.num_threads = threads;
      auto report = context.Solve(request);
      ASSERT_TRUE(report.ok()) << name << ": " << report.status();
      if (threads == 1) {
        reference.push_back(report.value().solution);
      } else {
        EXPECT_EQ(report.value().solution.selected,
                  reference[at].selected)
            << name << " pool " << at;
        EXPECT_EQ(report.value().solution.jq, reference[at].jq);
      }
      ++at;
    }
  }
}

/// (b) of the registry contract: SolveMany over shuffled batches is
/// order- and thread-count-invariant, and equals the serial per-request
/// path.
TEST(SolveManyTest, OrderAndThreadCountInvariant) {
  const auto pools = SeededPools(1, 12);
  auto context = PoolPlanContext::Plan(pools[0]).value();

  const std::vector<std::string> names = RegisteredSolverNames();
  std::vector<SolveRequest> requests;
  for (std::size_t i = 0; i < 3 * names.size(); ++i) {
    SolveRequest request;
    request.solver = names[i % names.size()];
    request.budget = 0.3 + 0.25 * static_cast<double>(i % 3);
    request.alpha = i % 2 == 0 ? 0.5 : 0.35;
    request.rng_seed = 1000 + i;
    requests.push_back(std::move(request));
  }

  // Serial reference: one Solve per request.
  std::vector<JspSolution> expected;
  for (const SolveRequest& request : requests) {
    auto report = context.Solve(request);
    ASSERT_TRUE(report.ok()) << request.solver << ": " << report.status();
    expected.push_back(report.value().solution);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    auto batch = context.SolveMany(requests, threads);
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_EQ(batch.value().size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(batch.value()[i].solution, expected[i])
          << requests[i].solver << " at " << threads << " threads";
    }
  }

  // Shuffled batch: report i must still answer shuffled request i.
  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng shuffle_rng(7);
  shuffle_rng.Shuffle(&order);
  std::vector<SolveRequest> shuffled;
  for (const std::size_t idx : order) shuffled.push_back(requests[idx]);
  auto batch = context.SolveMany(shuffled, 8);
  ASSERT_TRUE(batch.ok()) << batch.status();
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(batch.value()[i].solution, expected[order[i]])
        << "shuffled position " << i;
  }
}

/// The cross-request fusion contract: `fuse_move_scans` changes where the
/// batched kernel passes run — one flat-combining broker instead of each
/// thread inline — and nothing else. Every report must be *byte*-identical
/// to the unfused batch (solution, evaluation counters, solver stats;
/// wall_seconds is the one legitimately timing-dependent field), at any
/// thread count and under batch reordering.
TEST(SolveManyTest, FusedScansAreByteIdenticalToUnfused) {
  const auto pools = SeededPools(1, 12);
  auto context = PoolPlanContext::Plan(pools[0]).value();

  // Scan-heavy solvers (annealing polish drives the batched remove/swap
  // folds, greedy-mg the add fold, the facades both) plus a deterministic
  // one, several requests each so the broker sees concurrent passes.
  const std::vector<std::string> names = {"annealing", "optjs", "mvjs",
                                          "greedy-mg", "exhaustive"};
  std::vector<SolveRequest> requests;
  for (std::size_t i = 0; i < 2 * names.size(); ++i) {
    SolveRequest request;
    request.solver = names[i % names.size()];
    request.budget = 0.35 + 0.2 * static_cast<double>(i % 3);
    request.alpha = i % 2 == 0 ? 0.5 : 0.4;
    request.rng_seed = 5000 + i;
    requests.push_back(std::move(request));
  }

  const auto canonical = [](std::vector<SolveReport> reports) {
    std::vector<std::string> json;
    for (SolveReport& report : reports) {
      report.wall_seconds = 0.0;
      json.push_back(report.ToJson());
    }
    return json;
  };

  auto unfused = context.SolveMany(requests, std::size_t{0});
  ASSERT_TRUE(unfused.ok()) << unfused.status();
  const std::vector<std::string> expected =
      canonical(std::move(unfused).value());

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    SolveManyOptions options;
    options.num_threads = threads;
    options.fuse_move_scans = true;
    FusedScanStats stats;
    options.fusion_stats = &stats;
    auto fused = context.SolveMany(requests, options);
    ASSERT_TRUE(fused.ok()) << fused.status();
    const std::vector<std::string> got = canonical(std::move(fused).value());
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i], expected[i])
          << requests[i].solver << " at " << threads << " threads";
    }
    // The broker really brokered: the scan-heavy solvers flush batched
    // kernel passes, each of which must have gone through Execute.
    EXPECT_GT(stats.passes, 0u) << threads << " threads";
    EXPECT_GT(stats.drains, 0u) << threads << " threads";
    EXPECT_GE(stats.passes, stats.drains);
    EXPECT_GE(stats.max_drain, 1u);
  }

  // Reordered fused batch: report i still answers shuffled request i,
  // byte for byte.
  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng shuffle_rng(13);
  shuffle_rng.Shuffle(&order);
  std::vector<SolveRequest> shuffled;
  for (const std::size_t idx : order) shuffled.push_back(requests[idx]);
  SolveManyOptions options;
  options.num_threads = 8;
  options.fuse_move_scans = true;
  auto fused = context.SolveMany(shuffled, options);
  ASSERT_TRUE(fused.ok()) << fused.status();
  const std::vector<std::string> got = canonical(std::move(fused).value());
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(got[i], expected[order[i]]) << "shuffled position " << i;
  }
}

TEST(SolveManyTest, FailsWithTheLowestIndexError) {
  auto context =
      PoolPlanContext::Plan(jury::testing::Figure1Workers()).value();
  std::vector<SolveRequest> requests(3);
  requests[0].solver = "greedy-quality";
  requests[0].budget = 10.0;
  requests[1].solver = "not-a-solver";
  requests[1].budget = 10.0;
  requests[2].solver = "greedy-quality";
  requests[2].budget = -1.0;  // also invalid, but later in the batch
  const auto result = context.SolveMany(requests, 8);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

/// (c) of the registry contract: invalid options are a Status, not an
/// abort, for every entry that consumes them.
TEST(OptionsValidationTest, BadKnobsReturnStatusNotAbort) {
  auto context =
      PoolPlanContext::Plan(jury::testing::Figure1Workers()).value();
  const auto expect_invalid = [&](SolveRequest request,
                                  StatusCode code =
                                      StatusCode::kInvalidArgument) {
    request.budget = request.budget == 0.0 ? 15.0 : request.budget;
    const auto result = context.Solve(request);
    EXPECT_FALSE(result.ok()) << request.solver;
    EXPECT_EQ(result.status().code(), code) << result.status();
  };

  {
    SolveRequest request;
    request.solver = "annealing";
    request.tuning.annealing.cooling_factor = 1.5;
    expect_invalid(request);
  }
  {
    SolveRequest request;
    request.solver = "annealing";
    request.tuning.annealing.num_restarts = 0;
    expect_invalid(request);
  }
  {
    SolveRequest request;
    request.solver = "optjs";
    request.tuning.optjs.annealing.epsilon = 0.0;
    expect_invalid(request);
  }
  {
    SolveRequest request;
    request.solver = "optjs";
    request.tuning.optjs.bucket.num_buckets = 0;
    expect_invalid(request);
  }
  {
    SolveRequest request;
    request.solver = "mvjs";
    request.tuning.mvjs.annealing.initial_temperature = -1.0;
    expect_invalid(request);
  }
  {
    SolveRequest request;
    request.solver = "exhaustive";
    request.tuning.exhaustive.max_candidates = 0;
    expect_invalid(request);
  }
  {
    SolveRequest request;
    request.solver = "branch-bound";
    request.tuning.branch_bound.max_nodes = 0;
    expect_invalid(request);
  }
  {
    // MV is not monotone: branch-and-bound must reject it, not abort.
    SolveRequest request;
    request.solver = "branch-bound";
    request.tuning.objective = "mv-exact";
    expect_invalid(request);
  }
  {
    SolveRequest request;
    request.solver = "greedy-mg";
    request.tuning.objective = "no-such-objective";
    expect_invalid(request, StatusCode::kNotFound);
  }
  {
    SolveRequest request;
    request.solver = "greedy-quality";
    request.budget = -2.0;
    const auto result = context.Solve(request);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
  {
    SolveRequest request;
    request.solver = "greedy-quality";
    request.budget = 1.0;
    request.alpha = 1.5;
    const auto result = context.Solve(request);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(OptionsValidationTest, DirectValidateCalls) {
  EXPECT_TRUE(AnnealingOptions{}.Validate().ok());
  EXPECT_TRUE(GreedyOptions{}.Validate().ok());
  EXPECT_TRUE(ExhaustiveOptions{}.Validate().ok());
  EXPECT_TRUE(BranchBoundOptions{}.Validate().ok());
  EXPECT_TRUE(OptjsOptions{}.Validate().ok());
  EXPECT_TRUE(MvjsOptions{}.Validate().ok());

  AnnealingOptions bad_removal;
  bad_removal.removal_probability = 2.0;
  EXPECT_FALSE(bad_removal.Validate().ok());
  ExhaustiveOptions too_wide;
  too_wide.max_candidates = 63;
  EXPECT_FALSE(too_wide.Validate().ok());
  OptjsOptions bad_threshold;
  bad_threshold.exhaustive_threshold = 63;
  EXPECT_FALSE(bad_threshold.Validate().ok());

  // Legacy free functions validate too (the "call it at every Solve*
  // entry" satellite): the thin wrappers share the planned entry.
  JspInstance instance;
  instance.candidates = jury::testing::Figure1Workers();
  instance.budget = 15.0;
  const BucketBvObjective objective;
  Rng rng(1);
  AnnealingOptions bad_schedule;
  bad_schedule.cooling_factor = 0.0;
  EXPECT_EQ(
      SolveAnnealing(instance, objective, &rng, bad_schedule).status().code(),
      StatusCode::kInvalidArgument);
  BranchBoundOptions zero_nodes;
  zero_nodes.max_nodes = 0;
  EXPECT_EQ(SolveBranchAndBound(instance, objective, zero_nodes)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanContextTest, RejectsInvalidPools) {
  std::vector<Worker> bad = jury::testing::Figure1Workers();
  bad[2].quality = 1.5;
  EXPECT_EQ(PoolPlanContext::Plan(bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PlanContextTest, ArenaReusesInstancesAcrossRequests) {
  auto context =
      PoolPlanContext::Plan(jury::testing::Figure1Workers()).value();
  for (int i = 0; i < 32; ++i) {
    SolveRequest request;
    request.solver = "greedy-quality";
    request.budget = 5.0 + i;
    ASSERT_TRUE(context.Solve(request).ok());
  }
  // Serial solves lease and return one instance: the candidate copy was
  // made once, not 32 times.
  EXPECT_EQ(context.instances_created(), 1u);
}

TEST(PlanContextTest, ZeroBudgetReturnsTheEmptyJury) {
  auto context =
      PoolPlanContext::Plan(jury::testing::Figure1Workers()).value();
  SolveRequest request;
  request.solver = "optjs";
  request.budget = 0.0;
  request.alpha = 0.3;
  const auto report = context.Solve(request);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().solution.selected.empty());
  EXPECT_DOUBLE_EQ(report.value().solution.jq, 0.7);  // max(alpha, 1-alpha)
}

TEST(ToJsonTest, SolutionSerializationIsDeterministic) {
  JspSolution solution;
  solution.selected = {1, 2, 6};
  solution.jq = 0.845;
  solution.cost = 14.0;
  EXPECT_EQ(solution.ToJson(),
            "{\"cost\":14,\"jq\":0.845,\"selected\":[1,2,6]}");
  EXPECT_EQ(solution.ToJson(), solution.ToJson());
}

TEST(ToJsonTest, ReportSerializationSortsKeys) {
  SolveReport report;
  report.solver = "annealing";
  report.solution.selected = {0};
  report.solution.jq = 0.75;
  report.solution.cost = 2.0;
  report.wall_seconds = 0.5;
  report.evaluations.full = 3;
  report.evaluations.incremental = 7;
  report.stats = {{"zeta", 1.0}, {"alpha", 2.0}};
  EXPECT_EQ(report.ToJson(),
            "{\"evaluations\":{\"full\":3,\"incremental\":7},"
            "\"solution\":{\"cost\":2,\"jq\":0.75,\"selected\":[0]},"
            "\"solver\":\"annealing\","
            "\"stats\":{\"alpha\":2,\"zeta\":1},"
            "\"wall_seconds\":0.5}");
}

TEST(ReportTest, StatsAreUniformAcrossSolvers) {
  // The stats block that historically only annealing exposed: every
  // stochastic solver reports the SA counters, branch-and-bound its node
  // counts, and all of them the evaluation split.
  auto context =
      PoolPlanContext::Plan(jury::testing::Figure1Workers()).value();
  SolveRequest request;
  request.budget = 15.0;
  request.solver = "annealing";
  auto annealing = context.Solve(request).value();
  EXPECT_GT(annealing.stats.at("moves_attempted"), 0.0);
  EXPECT_GT(annealing.evaluations.total(), 0u);
  EXPECT_GT(annealing.wall_seconds, 0.0);

  request.solver = "branch-bound";
  auto branch_bound = context.Solve(request).value();
  EXPECT_GT(branch_bound.stats.at("nodes_explored"), 0.0);
  EXPECT_GT(branch_bound.evaluations.total(), 0u);

  request.solver = "optjs";
  auto optjs = context.Solve(request).value();
  EXPECT_EQ(optjs.stats.at("used_exhaustive_shortcut"), 1.0);  // N=7 <= 12
  EXPECT_GT(optjs.evaluations.total(), 0u);
}

// --------------------------------------------- per-field Validate contract
//
// Every options field is flipped to each hostile value class in turn
// (NaN, ±inf, negative, zero, huge) and the Status must name *that*
// field; when several fields are bad, the lowest-declared one wins. The
// fuzzers rely on this contract to map a crash back to a knob.

struct FieldCase {
  const char* name;
  std::function<void(SolveRequest*)> mutate;
  const char* error_fragment;  // "" means the request must stay valid
};

class RequestFieldValidation : public ::testing::TestWithParam<FieldCase> {};

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

INSTANTIATE_TEST_SUITE_P(
    AllFields, RequestFieldValidation,
    ::testing::Values(
        // SolveRequest scalars, declaration order: solver, budget, alpha.
        FieldCase{"solver_empty", [](SolveRequest* r) { r->solver.clear(); },
                  "must name a solver"},
        FieldCase{"budget_nan", [](SolveRequest* r) { r->budget = kNan; },
                  "budget must be finite and non-negative"},
        FieldCase{"budget_neg_inf",
                  [](SolveRequest* r) { r->budget = -kInf; },
                  "budget must be finite and non-negative"},
        FieldCase{"budget_pos_inf", [](SolveRequest* r) { r->budget = kInf; },
                  "budget must be finite and non-negative"},
        FieldCase{"budget_negative",
                  [](SolveRequest* r) { r->budget = -1.0; },
                  "budget must be finite and non-negative"},
        FieldCase{"budget_zero_is_valid",
                  [](SolveRequest* r) { r->budget = 0.0; }, ""},
        FieldCase{"budget_huge_is_valid",
                  [](SolveRequest* r) {
                    r->budget = std::numeric_limits<double>::max();
                  },
                  ""},
        FieldCase{"alpha_nan", [](SolveRequest* r) { r->alpha = kNan; },
                  "alpha outside [0,1]"},
        FieldCase{"alpha_above_one",
                  [](SolveRequest* r) { r->alpha = 1.0 + 1e-9; },
                  "alpha outside [0,1]"},
        FieldCase{"alpha_negative", [](SolveRequest* r) { r->alpha = -0.1; },
                  "alpha outside [0,1]"},
        FieldCase{"alpha_endpoints_are_valid",
                  [](SolveRequest* r) { r->alpha = 1.0; }, ""},
        // AnnealingOptions, declaration order: initial_temperature,
        // epsilon, cooling_factor, ..., removal_probability, num_restarts.
        FieldCase{"temperature_nan",
                  [](SolveRequest* r) {
                    r->solver = "annealing";
                    r->tuning.annealing.initial_temperature = kNan;
                  },
                  "initial_temperature must be finite and > 0"},
        FieldCase{"temperature_inf",
                  [](SolveRequest* r) {
                    r->solver = "annealing";
                    r->tuning.annealing.initial_temperature = kInf;
                  },
                  "initial_temperature must be finite and > 0"},
        FieldCase{"temperature_zero",
                  [](SolveRequest* r) {
                    r->solver = "annealing";
                    r->tuning.annealing.initial_temperature = 0.0;
                  },
                  "initial_temperature must be finite and > 0"},
        FieldCase{"epsilon_nan",
                  [](SolveRequest* r) {
                    r->solver = "annealing";
                    r->tuning.annealing.epsilon = kNan;
                  },
                  "epsilon must be finite and > 0"},
        FieldCase{"epsilon_negative",
                  [](SolveRequest* r) {
                    r->solver = "annealing";
                    r->tuning.annealing.epsilon = -1e-8;
                  },
                  "epsilon must be finite and > 0"},
        FieldCase{"cooling_nan",
                  [](SolveRequest* r) {
                    r->solver = "annealing";
                    r->tuning.annealing.cooling_factor = kNan;
                  },
                  "cooling_factor must be in (0, 1)"},
        FieldCase{"cooling_one",
                  [](SolveRequest* r) {
                    r->solver = "annealing";
                    r->tuning.annealing.cooling_factor = 1.0;
                  },
                  "cooling_factor must be in (0, 1)"},
        FieldCase{"removal_probability_nan",
                  [](SolveRequest* r) {
                    r->solver = "annealing";
                    r->tuning.annealing.removal_probability = kNan;
                  },
                  "removal_probability must be a probability"},
        FieldCase{"restarts_zero",
                  [](SolveRequest* r) {
                    r->solver = "annealing";
                    r->tuning.annealing.num_restarts = 0;
                  },
                  "num_restarts must be >= 1"},
        FieldCase{"restarts_huge",
                  [](SolveRequest* r) {
                    r->solver = "annealing";
                    r->tuning.annealing.num_restarts =
                        AnnealingOptions::kMaxRestarts + 1;
                  },
                  "num_restarts must be <= 1000000"},
        // Lowest-index-field: initial_temperature is declared before
        // cooling_factor, so it names the error even with both bad.
        FieldCase{"lowest_field_wins_in_annealing",
                  [](SolveRequest* r) {
                    r->solver = "annealing";
                    r->tuning.annealing.initial_temperature = kNan;
                    r->tuning.annealing.cooling_factor = 7.0;
                  },
                  "initial_temperature must be finite and > 0"},
        // Bucket knobs, declaration order: num_buckets, then cutoff.
        FieldCase{"buckets_zero",
                  [](SolveRequest* r) {
                    r->solver = "optjs";
                    r->tuning.optjs.bucket.num_buckets = 0;
                  },
                  "bucket.num_buckets must be >= 1"},
        FieldCase{"buckets_huge",
                  [](SolveRequest* r) {
                    r->solver = "optjs";
                    r->tuning.optjs.bucket.num_buckets =
                        BucketJqOptions::kMaxBuckets + 1;
                  },
                  "bucket.num_buckets must be <= 1000000"},
        FieldCase{"cutoff_nan",
                  [](SolveRequest* r) {
                    r->solver = "optjs";
                    r->tuning.optjs.bucket.high_quality_cutoff = kNan;
                  },
                  "bucket.high_quality_cutoff must lie in (0, 1]"},
        // OptjsOptions validates bucket before annealing before the
        // threshold; with all three bad, bucket's error surfaces.
        FieldCase{"optjs_validates_bucket_first",
                  [](SolveRequest* r) {
                    r->solver = "optjs";
                    r->tuning.optjs.bucket.num_buckets = 0;
                    r->tuning.optjs.annealing.epsilon = kNan;
                    r->tuning.optjs.exhaustive_threshold = 63;
                  },
                  "bucket.num_buckets must be >= 1"},
        FieldCase{"optjs_threshold_too_wide",
                  [](SolveRequest* r) {
                    r->solver = "optjs";
                    r->tuning.optjs.exhaustive_threshold = 63;
                  },
                  "exhaustive_threshold must be <= 62"},
        FieldCase{"exhaustive_zero",
                  [](SolveRequest* r) {
                    r->solver = "exhaustive";
                    r->tuning.exhaustive.max_candidates = 0;
                  },
                  "max_candidates must lie in [1, 62]"},
        FieldCase{"exhaustive_huge",
                  [](SolveRequest* r) {
                    r->solver = "exhaustive";
                    r->tuning.exhaustive.max_candidates = 10000;
                  },
                  "max_candidates must lie in [1, 62]"},
        FieldCase{"branch_bound_zero_nodes",
                  [](SolveRequest* r) {
                    r->solver = "branch-bound";
                    r->tuning.branch_bound.max_nodes = 0;
                  },
                  "max_nodes must be >= 1"},
        FieldCase{"mvjs_inherits_annealing_contract",
                  [](SolveRequest* r) {
                    r->solver = "mvjs";
                    r->tuning.mvjs.annealing.cooling_factor = 0.0;
                  },
                  "cooling_factor must be in (0, 1)"}),
    [](const ::testing::TestParamInfo<FieldCase>& info) {
      return std::string(info.param.name);
    });

TEST_P(RequestFieldValidation, StatusNamesTheField) {
  const FieldCase& field_case = GetParam();
  auto context =
      PoolPlanContext::Plan(jury::testing::Figure1Workers()).value();
  SolveRequest request;
  request.solver = "greedy-quality";
  request.budget = 15.0;
  field_case.mutate(&request);
  const auto result = context.Solve(request);
  if (std::string(field_case.error_fragment).empty()) {
    EXPECT_TRUE(result.ok()) << result.status();
    return;
  }
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
      << result.status();
  EXPECT_NE(result.status().message().find(field_case.error_fragment),
            std::string::npos)
      << "status was: " << result.status();
}

// --------------------------------------------------- SolveRequest JSON

TEST(RequestJsonTest, RoundTripsThroughJson) {
  SolveRequest request;
  request.solver = "annealing";
  request.budget = 12.5;
  request.alpha = 0.65;
  request.rng_seed = 424242;
  request.collect_process_stats = true;
  request.tuning.objective = "bv-exact";
  request.tuning.annealing.num_restarts = 4;
  request.tuning.annealing.cooling_factor = 0.75;
  request.tuning.annealing.return_best_seen = true;
  request.tuning.bucket.num_buckets = 250;
  request.tuning.optjs.exhaustive_threshold = 10;
  request.tuning.mvjs.use_odd_top_k = false;

  const std::string wire = request.ToJson();
  auto reparsed = SolveRequest::FromJsonText(wire);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  // The binding writes every field, so equal wire bytes mean equal
  // requests; byte-stable serialization is the golden-trace bedrock.
  EXPECT_EQ(reparsed.value().ToJson(), wire);
  EXPECT_EQ(reparsed.value().solver, "annealing");
  EXPECT_EQ(reparsed.value().rng_seed, 424242u);
  EXPECT_TRUE(reparsed.value().collect_process_stats);
  EXPECT_EQ(reparsed.value().tuning.annealing.num_restarts, 4u);
}

TEST(RequestJsonTest, StrictBindingErrors) {
  const auto expect_error = [](std::string_view text,
                               std::string_view fragment) {
    auto parsed = SolveRequest::FromJsonText(text);
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find(fragment), std::string::npos)
        << "status was: " << parsed.status() << " for " << text;
  };
  expect_error(R"({"solvr":"greedy-quality"})", "unknown key");
  expect_error(R"({"solver":3})", "request.solver must be a string");
  expect_error(R"({"budget":"lots"})", "request.budget must be a number");
  expect_error(R"({"rng_seed":-1})",
               "request.rng_seed must be a non-negative integer");
  expect_error(R"({"tuning":{"annealing":{"num_restarts":1e99}}})",
               "request.tuning.annealing.num_restarts must be a "
               "non-negative integer");
  expect_error(R"({"tuning":{"bucket":{"num_buckets":4294967296}}})",
               "out of range");
  expect_error(R"({"tuning":{"annealing":{"warp_speed":9}}})",
               "unknown key");
  expect_error(R"([1,2,3])", "request must be an object");
  expect_error("not json at all", "JSON parse error");

  // A malformed document must never mutate state: parse errors arrive
  // before any Solve, so the registry's error counter is untouched.
  auto ok = SolveRequest::FromJsonText(R"({"solver":"greedy-quality"})");
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok.value().solver, "greedy-quality");
}

// ------------------------------------------------- process-wide counters

TEST(ProcessStatsTest, CountersAdvanceAcrossASolve) {
  auto context =
      PoolPlanContext::Plan(jury::testing::Figure1Workers()).value();
  const auto before = StatsRegistry::Global().Snapshot();
  SolveRequest request;
  request.solver = "greedy-quality";
  request.budget = 15.0;
  ASSERT_TRUE(context.Solve(request).ok());
  const auto after = StatsRegistry::Global().Snapshot();
  EXPECT_EQ(after.at("api.requests_solved"),
            before.at("api.requests_solved") + 1);
  EXPECT_GT(after.at("eval.full") + after.at("eval.incremental"),
            before.at("eval.full") + before.at("eval.incremental"));
  EXPECT_EQ(after.at("plan.instances_leased"),
            before.at("plan.instances_leased") + 1);
  EXPECT_EQ(after.at("api.request_errors"), before.at("api.request_errors"));

  request.solver = "no-such-solver";
  ASSERT_FALSE(context.Solve(request).ok());
  const auto errored = StatsRegistry::Global().Snapshot();
  EXPECT_EQ(errored.at("api.request_errors"),
            after.at("api.request_errors") + 1);
  EXPECT_EQ(errored.at("api.requests_solved"),
            after.at("api.requests_solved"));
}

TEST(ProcessStatsTest, ReportCarriesSnapshotOnlyWhenRequested) {
  auto context =
      PoolPlanContext::Plan(jury::testing::Figure1Workers()).value();
  SolveRequest request;
  request.solver = "greedy-quality";
  request.budget = 15.0;

  auto plain = context.Solve(request).value();
  EXPECT_TRUE(plain.process_stats.empty());
  EXPECT_EQ(plain.ToJson().find("process_stats"), std::string::npos)
      << "default reports must stay byte-identical to the golden traces";

  request.collect_process_stats = true;
  auto with_stats = context.Solve(request).value();
  ASSERT_FALSE(with_stats.process_stats.empty());
  EXPECT_GT(with_stats.process_stats.at("api.requests_solved"), 0u);
  EXPECT_GT(with_stats.process_stats.at("plan.contexts_planned"), 0u);
  EXPECT_NE(with_stats.ToJson().find("\"process_stats\":{"),
            std::string::npos);
}

}  // namespace
}  // namespace jury::api
