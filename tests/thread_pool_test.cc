#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "core/objective.h"

namespace jury {
namespace {

TEST(ResolveThreadCountTest, ExplicitRequestWins) {
  ::setenv("JURYOPT_THREADS", "7", 1);
  EXPECT_EQ(ResolveThreadCount(3), 3u);
  ::unsetenv("JURYOPT_THREADS");
}

TEST(ResolveThreadCountTest, EnvOverridesAuto) {
  ::setenv("JURYOPT_THREADS", "5", 1);
  EXPECT_EQ(ResolveThreadCount(0), 5u);
  ::unsetenv("JURYOPT_THREADS");
}

TEST(ResolveThreadCountTest, AutoFallsBackToHardware) {
  ::unsetenv("JURYOPT_THREADS");
  const unsigned hw = std::thread::hardware_concurrency();
  EXPECT_EQ(ResolveThreadCount(0), hw > 0 ? hw : 1u);
}

TEST(ResolveThreadCountTest, NonPositiveEnvIgnored) {
  ::setenv("JURYOPT_THREADS", "0", 1);
  EXPECT_GE(ResolveThreadCount(0), 1u);
  ::setenv("JURYOPT_THREADS", "garbage", 1);
  EXPECT_GE(ResolveThreadCount(0), 1u);
  ::unsetenv("JURYOPT_THREADS");
}

TEST(ThreadPoolTest, LifecycleAcrossSizes) {
  // Construction and destruction must be clean whether or not workers were
  // ever given work (the destructor joins through the shutdown path).
  for (std::size_t size : {0u, 1u, 2u, 4u, 8u}) {
    ThreadPool pool(size);
    EXPECT_GE(pool.num_threads(), 1u);
  }
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    pool.ParallelFor(0, 10, 2, [](std::size_t, std::size_t) {});
  }  // destructor joins busy-capable workers
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      for (std::size_t grain : {1u, 3u, 64u, 2000u}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto& h : hits) h.store(0);
        pool.ParallelFor(0, n, grain,
                         [&](std::size_t begin, std::size_t end) {
                           ASSERT_LE(begin, end);
                           ASSERT_LE(end, n);
                           for (std::size_t i = begin; i < end; ++i) {
                             hits[i].fetch_add(1);
                           }
                         });
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads
                                       << " n=" << n << " grain=" << grain
                                       << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPoolTest, ParallelForHonorsShardBoundaries) {
  // Shard boundaries are a pure function of (begin, end, grain): every
  // callback must start at begin + k*grain regardless of pool size.
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> shards;
    pool.ParallelFor(10, 55, 10, [&](std::size_t begin, std::size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      shards.emplace(begin, end);
    });
    const std::set<std::pair<std::size_t, std::size_t>> expected{
        {10, 20}, {20, 30}, {30, 40}, {40, 50}, {50, 55}};
    EXPECT_EQ(shards, expected) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyRegions) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(0, 32, 4, [&](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin);
    });
  }
  EXPECT_EQ(total.load(), 200u * 32u);
}

TEST(ParallelArgmaxTest, FindsTheMaximum) {
  const std::vector<double> scores{0.1, 0.7, 0.3, 0.9, 0.2};
  for (std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const ArgmaxResult result = ParallelArgmax(
        &pool, scores.size(), 1, [&](std::size_t i) { return scores[i]; },
        nullptr, kScoreEquivalenceTol);
    EXPECT_EQ(result.index, 3u);
    EXPECT_DOUBLE_EQ(result.score, 0.9);
  }
}

TEST(ParallelArgmaxTest, BreaksTiesByLowestIndex) {
  // Exact ties — and ties within the kScoreEquivalenceTol band — go to
  // the earliest index, matching the serial solvers' scan loops.
  const std::vector<double> scores{0.5, 0.8, 0.8, 0.8 + 0.5e-12, 0.2};
  for (std::size_t threads : {1u, 3u, 8u}) {
    ThreadPool pool(threads);
    for (std::size_t grain : {1u, 2u, 16u}) {
      const ArgmaxResult result = ParallelArgmax(
          &pool, scores.size(), grain,
          [&](std::size_t i) { return scores[i]; }, nullptr,
          kScoreEquivalenceTol);
      EXPECT_EQ(result.index, 1u) << "threads=" << threads
                                  << " grain=" << grain;
    }
  }
}

TEST(ParallelArgmaxTest, RespectsEligibility) {
  const std::vector<double> scores{0.9, 0.8, 0.7, 0.6};
  ThreadPool pool(4);
  const ArgmaxResult result = ParallelArgmax(
      &pool, scores.size(), 1, [&](std::size_t i) { return scores[i]; },
      [](std::size_t i) { return i % 2 == 1; }, kScoreEquivalenceTol);
  EXPECT_EQ(result.index, 1u);
  EXPECT_DOUBLE_EQ(result.score, 0.8);
}

TEST(ParallelArgmaxTest, NoEligibleIndexYieldsSentinel) {
  ThreadPool pool(2);
  const ArgmaxResult result = ParallelArgmax(
      &pool, 5, 1, [](std::size_t) { return 1.0; },
      [](std::size_t) { return false; }, kScoreEquivalenceTol);
  EXPECT_EQ(result.index, ArgmaxResult::kNoArgmax);
}

}  // namespace
}  // namespace jury
