// Bit-identity property tests for the runtime-dispatched SIMD kernels
// (util/simd_dispatch.h): every level must reproduce the scalar reference
// — and the scalar reference must reproduce the per-candidate scalar
// compositions ({copy; AddTrial/RemoveTrial/Convolve; queries}) — bit for
// bit, across batch sizes 1–257 (odd tails, sub-block remainders) and
// unaligned buffer offsets. Plus end-to-end solver equality: every solver
// returns the identical jury under JURYOPT_SIMD=scalar and =avx2.

#include <cstddef>
#include <vector>

#include "gtest/gtest.h"
#include "core/annealing.h"
#include "core/branch_bound.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "jq/bucket.h"
#include "test_util.h"
#include "util/poisson_binomial.h"
#include "util/rng.h"
#include "util/simd_dispatch.h"

namespace jury {
namespace {

using jury::testing::RandomPool;

/// Forces a dispatch level for one scope; restores the previous level.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : previous_(simd::ActiveLevel()), ok_(simd::SetLevel(level)) {}
  ~ScopedSimdLevel() { simd::SetLevel(previous_); }
  bool ok() const { return ok_; }

 private:
  simd::Level previous_;
  bool ok_;
};

/// The batch sizes the sweep exercises: every size in [1, 64] (all AVX2
/// sub-block remainders), then straddles of the powers up to 257.
std::vector<std::size_t> SweepSizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 1; s <= 64; ++s) sizes.push_back(s);
  for (std::size_t s : {65u, 96u, 127u, 128u, 129u, 191u, 192u, 255u, 256u,
                        257u}) {
    sizes.push_back(s);
  }
  return sizes;
}

constexpr std::size_t kMaxSweep = 257;
constexpr std::size_t kOffsets[] = {0, 1, 3};  // unaligned starts

TEST(SimdDispatchTest, LevelSelectionAndNames) {
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
  ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  EXPECT_STREQ(simd::Kernels().name, "scalar");
  if (simd::Avx2Available()) {
    ASSERT_TRUE(simd::SetLevel(simd::Level::kAvx2));
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kAvx2);
    EXPECT_STREQ(simd::Kernels().name, "avx2");
    ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
  } else {
    EXPECT_FALSE(simd::SetLevel(simd::Level::kAvx2));
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  }
}

// ---------------------------------------------------------------------------
// PoissonBinomial::EvaluateBatch — the add/swap fold.
// ---------------------------------------------------------------------------

void EvaluateBatchSweep(simd::Level level) {
  ScopedSimdLevel scoped(level);
  ASSERT_TRUE(scoped.ok());
  Rng rng(90101);
  for (int n : {0, 1, 7, 38}) {
    std::vector<double> committed;
    for (int i = 0; i < n; ++i) committed.push_back(rng.Uniform(0.05, 0.95));
    const PoissonBinomial pb(committed);
    std::vector<double> pool(kMaxSweep + 8);
    for (double& p : pool) p = rng.Uniform();
    pool[0] = 0.0;  // degenerate candidates in every offset window
    pool[4] = 1.0;
    pool[5] = 0.5;
    for (const std::size_t offset : kOffsets) {
      for (const std::size_t count : SweepSizes()) {
        const double* probs = pool.data() + offset;
        // Odd tail thresholds, including out-of-range ones.
        for (int k : {-1, 0, 1, (n + 1) / 2 + 1, n + 1, n + 2}) {
          std::vector<double> tails(count), cdfs(count);
          pb.EvaluateBatch(probs, count, k, k - 1, tails.data(),
                           cdfs.data());
          for (std::size_t j = 0; j < count; ++j) {
            PoissonBinomial copy = pb;
            copy.AddTrial(probs[j]);
            ASSERT_EQ(tails[j], copy.TailAtLeast(k))
                << simd::LevelName(level) << " n=" << n << " count=" << count
                << " offset=" << offset << " k=" << k << " j=" << j;
            ASSERT_EQ(cdfs[j], copy.CdfAtMost(k - 1))
                << simd::LevelName(level) << " n=" << n << " count=" << count
                << " offset=" << offset << " k=" << k << " j=" << j;
          }
        }
      }
    }
  }
}

TEST(SimdDispatchTest, EvaluateBatchMatchesScalarCompositionScalarLevel) {
  EvaluateBatchSweep(simd::Level::kScalar);
}

TEST(SimdDispatchTest, EvaluateBatchMatchesScalarCompositionAvx2Level) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 unavailable";
  EvaluateBatchSweep(simd::Level::kAvx2);
}

// ---------------------------------------------------------------------------
// PoissonBinomial::EvaluateRemoveBatch — the remove fold.
// ---------------------------------------------------------------------------

void RemoveBatchSweep(simd::Level level) {
  ScopedSimdLevel scoped(level);
  ASSERT_TRUE(scoped.ok());
  Rng rng(90103);
  for (int n : {1, 2, 9, 41}) {
    // Trials spanning both deconvolution regimes plus the exact inverses.
    std::vector<double> committed;
    committed.push_back(0.0);
    if (n > 1) committed.push_back(1.0);
    while (static_cast<int>(committed.size()) < n) {
      committed.push_back(rng.Uniform(0.05, 0.95));
    }
    const PoissonBinomial pb(committed);
    // Candidate pool cycling through the committed trials so every batch
    // hits forward (p < 1/2), backward (p >= 1/2), and degenerate lanes.
    std::vector<double> pool(kMaxSweep + 8);
    for (std::size_t j = 0; j < pool.size(); ++j) {
      pool[j] = committed[j % committed.size()];
    }
    for (const std::size_t offset : kOffsets) {
      for (const std::size_t count : SweepSizes()) {
        const double* probs = pool.data() + offset;
        for (int k : {-1, 0, 1, n / 2 + 1, n - 1, n}) {
          std::vector<double> tails(count), cdfs(count);
          pb.EvaluateRemoveBatch(probs, count, k, k - 1, tails.data(),
                                 cdfs.data());
          for (std::size_t j = 0; j < count; ++j) {
            PoissonBinomial copy = pb;
            copy.RemoveTrial(probs[j]);
            ASSERT_EQ(tails[j], copy.TailAtLeast(k))
                << simd::LevelName(level) << " n=" << n << " count=" << count
                << " offset=" << offset << " k=" << k << " j=" << j
                << " p=" << probs[j];
            ASSERT_EQ(cdfs[j], copy.CdfAtMost(k - 1))
                << simd::LevelName(level) << " n=" << n << " count=" << count
                << " offset=" << offset << " k=" << k << " j=" << j
                << " p=" << probs[j];
          }
        }
      }
    }
  }
}

TEST(SimdDispatchTest, RemoveBatchMatchesScalarCompositionScalarLevel) {
  RemoveBatchSweep(simd::Level::kScalar);
}

TEST(SimdDispatchTest, RemoveBatchMatchesScalarCompositionAvx2Level) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 unavailable";
  RemoveBatchSweep(simd::Level::kAvx2);
}

// ---------------------------------------------------------------------------
// BucketKeyDistribution::ConvolvePositiveMassBatch — the bucket add fold —
// and DeconvolvePositiveMass — the bucket remove fold.
// ---------------------------------------------------------------------------

void BucketBatchSweep(simd::Level level) {
  ScopedSimdLevel scoped(level);
  ASSERT_TRUE(scoped.ok());
  Rng rng(90107);
  for (int workers : {0, 1, 12, 40}) {
    BucketKeyDistribution dist;
    std::vector<std::int64_t> folded_b;
    std::vector<double> folded_q;
    for (int i = 0; i < workers; ++i) {
      folded_b.push_back(1 + static_cast<std::int64_t>(rng.UniformInt(40)));
      folded_q.push_back(rng.Uniform(0.5, 0.95));
      dist.Convolve(folded_b.back(), folded_q.back());
    }
    // Candidate buckets: zeros, small, span-straddling, beyond-span.
    std::vector<std::int64_t> bpool(kMaxSweep + 8);
    std::vector<double> qpool(kMaxSweep + 8);
    for (std::size_t j = 0; j < bpool.size(); ++j) {
      switch (j % 5) {
        case 0: bpool[j] = 0; break;
        case 1: bpool[j] = 1 + static_cast<std::int64_t>(rng.UniformInt(10));
                break;
        case 2: bpool[j] = std::max<std::int64_t>(1, dist.span()); break;
        case 3: bpool[j] = dist.span() + 1 +
                           static_cast<std::int64_t>(rng.UniformInt(20));
                break;
        default: bpool[j] = 2 * dist.span() + 3; break;
      }
      qpool[j] = rng.Uniform(0.5, 1.0);
    }
    for (const std::size_t offset : kOffsets) {
      for (const std::size_t count : SweepSizes()) {
        std::vector<double> out(count);
        dist.ConvolvePositiveMassBatch(bpool.data() + offset,
                                       qpool.data() + offset, count,
                                       out.data());
        for (std::size_t j = 0; j < count; ++j) {
          BucketKeyDistribution copy = dist;
          copy.Convolve(bpool[offset + j], qpool[offset + j]);
          ASSERT_EQ(out[j], copy.PositiveMass())
              << simd::LevelName(level) << " workers=" << workers
              << " count=" << count << " offset=" << offset << " j=" << j
              << " b=" << bpool[offset + j];
        }
      }
    }
    // Remove fold: deconvolving any previously folded worker must equal
    // the scalar copy-deconvolve-sweep bit for bit.
    for (int i = 0; i < workers; ++i) {
      BucketKeyDistribution copy = dist;
      copy.Deconvolve(folded_b[static_cast<std::size_t>(i)],
                      folded_q[static_cast<std::size_t>(i)]);
      ASSERT_EQ(dist.DeconvolvePositiveMass(
                    folded_b[static_cast<std::size_t>(i)],
                    folded_q[static_cast<std::size_t>(i)]),
                copy.PositiveMass())
          << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(SimdDispatchTest, BucketBatchMatchesScalarCompositionScalarLevel) {
  BucketBatchSweep(simd::Level::kScalar);
}

TEST(SimdDispatchTest, BucketBatchMatchesScalarCompositionAvx2Level) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 unavailable";
  BucketBatchSweep(simd::Level::kAvx2);
}

// ---------------------------------------------------------------------------
// Cross-level equality: the same batched calls under scalar and AVX2
// dispatch produce bit-identical outputs (stronger than both matching the
// composition — it pins the dispatch seam itself).
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, LevelsAgreeBitForBitOnRandomBatches) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 unavailable";
  Rng rng(90109);
  std::vector<double> committed;
  for (int i = 0; i < 29; ++i) committed.push_back(rng.Uniform(0.05, 0.95));
  const PoissonBinomial pb(committed);
  std::vector<double> probs;
  for (int j = 0; j < 153; ++j) probs.push_back(rng.Uniform());
  const int k = 16;
  std::vector<double> tails_s(probs.size()), cdfs_s(probs.size());
  std::vector<double> tails_v(probs.size()), cdfs_v(probs.size());
  {
    ScopedSimdLevel scalar(simd::Level::kScalar);
    pb.EvaluateBatch(probs.data(), probs.size(), k, k - 1, tails_s.data(),
                     cdfs_s.data());
  }
  {
    ScopedSimdLevel avx2(simd::Level::kAvx2);
    pb.EvaluateBatch(probs.data(), probs.size(), k, k - 1, tails_v.data(),
                     cdfs_v.data());
  }
  for (std::size_t j = 0; j < probs.size(); ++j) {
    ASSERT_EQ(tails_s[j], tails_v[j]) << j;
    ASSERT_EQ(cdfs_s[j], cdfs_v[j]) << j;
  }
}

// ---------------------------------------------------------------------------
// End-to-end: solvers return the identical jury at every dispatch level
// (the JURYOPT_SIMD=scalar vs =avx2 equality run, in-process).
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, SolversReturnIdenticalJuriesAcrossLevels) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 unavailable";
  Rng rng(90111);
  const BucketBvObjective bucket;
  const MajorityObjective majority;
  for (int inst = 0; inst < 8; ++inst) {
    JspInstance instance;
    instance.candidates = RandomPool(&rng, 12, 0.4, 0.95, 0.05, 0.4);
    instance.budget = rng.Uniform(0.3, 1.0);
    instance.alpha = 0.5;
    const std::uint64_t seed = 7100 + static_cast<std::uint64_t>(inst);

    JspSolution ref_sa, ref_greedy, ref_mv_greedy, ref_ex, ref_bb;
    bool have_ref = false;
    for (const simd::Level level :
         {simd::Level::kScalar, simd::Level::kAvx2}) {
      ScopedSimdLevel scoped(level);
      ASSERT_TRUE(scoped.ok());
      Rng sa_rng(seed);
      const auto sa = SolveAnnealing(instance, bucket, &sa_rng).value();
      const auto greedy =
          SolveGreedyMarginalGain(instance, bucket, {}).value();
      const auto mv_greedy =
          SolveGreedyMarginalGain(instance, majority, {}).value();
      const auto ex = SolveExhaustive(instance, bucket, {}).value();
      const auto bb = SolveBranchAndBound(instance, bucket, {}).value();
      if (!have_ref) {
        ref_sa = sa;
        ref_greedy = greedy;
        ref_mv_greedy = mv_greedy;
        ref_ex = ex;
        ref_bb = bb;
        have_ref = true;
        continue;
      }
      EXPECT_EQ(sa.selected, ref_sa.selected) << "sa inst " << inst;
      EXPECT_EQ(sa.jq, ref_sa.jq) << "sa inst " << inst;
      EXPECT_EQ(greedy.selected, ref_greedy.selected) << "greedy " << inst;
      EXPECT_EQ(greedy.jq, ref_greedy.jq) << "greedy " << inst;
      EXPECT_EQ(mv_greedy.selected, ref_mv_greedy.selected)
          << "mv greedy " << inst;
      EXPECT_EQ(mv_greedy.jq, ref_mv_greedy.jq) << "mv greedy " << inst;
      EXPECT_EQ(ex.selected, ref_ex.selected) << "exhaustive " << inst;
      EXPECT_EQ(ex.jq, ref_ex.jq) << "exhaustive " << inst;
      EXPECT_EQ(bb.selected, ref_bb.selected) << "branch-bound " << inst;
      EXPECT_EQ(bb.jq, ref_bb.jq) << "branch-bound " << inst;
    }
  }
}

}  // namespace
}  // namespace jury
