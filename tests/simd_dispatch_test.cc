// Bit-identity property tests for the runtime-dispatched SIMD kernels
// (util/simd_dispatch.h): every level must reproduce the scalar reference
// — and the scalar reference must reproduce the per-candidate scalar
// compositions ({copy; AddTrial/RemoveTrial/Convolve; queries}) — bit for
// bit, across batch sizes 1–257 (odd tails, sub-block remainders) and
// unaligned buffer offsets. Plus end-to-end solver equality: every solver
// returns the identical jury under JURYOPT_SIMD=scalar, =avx2, and
// =avx512 (each vector sweep runs at every compiled level and skips the
// levels this host cannot execute).

#include <cstddef>
#include <vector>

#include "gtest/gtest.h"
#include "core/annealing.h"
#include "core/branch_bound.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "jq/bucket.h"
#include "test_util.h"
#include "util/poisson_binomial.h"
#include "util/rng.h"
#include "util/simd_dispatch.h"

namespace jury {
namespace {

using jury::testing::RandomPool;

/// Forces a dispatch level for one scope; restores the previous level.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : previous_(simd::ActiveLevel()), ok_(simd::SetLevel(level)) {}
  ~ScopedSimdLevel() { simd::SetLevel(previous_); }
  bool ok() const { return ok_; }

 private:
  simd::Level previous_;
  bool ok_;
};

/// The batch sizes the sweep exercises: every size in [1, 64] (all AVX2
/// sub-block remainders), then straddles of the powers up to 257.
std::vector<std::size_t> SweepSizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 1; s <= 64; ++s) sizes.push_back(s);
  for (std::size_t s : {65u, 96u, 127u, 128u, 129u, 191u, 192u, 255u, 256u,
                        257u}) {
    sizes.push_back(s);
  }
  return sizes;
}

constexpr std::size_t kMaxSweep = 257;
constexpr std::size_t kOffsets[] = {0, 1, 3};  // unaligned starts

TEST(SimdDispatchTest, LevelSelectionAndNames) {
  EXPECT_STREQ(simd::LevelName(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::LevelName(simd::Level::kAvx512), "avx512");
  ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
  EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  EXPECT_STREQ(simd::Kernels().name, "scalar");
  if (simd::Avx2Available()) {
    ASSERT_TRUE(simd::SetLevel(simd::Level::kAvx2));
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kAvx2);
    EXPECT_STREQ(simd::Kernels().name, "avx2");
    ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
  } else {
    EXPECT_FALSE(simd::SetLevel(simd::Level::kAvx2));
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  }
  if (simd::Avx512Available()) {
    ASSERT_TRUE(simd::SetLevel(simd::Level::kAvx512));
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kAvx512);
    EXPECT_STREQ(simd::Kernels().name, "avx512");
    ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
  } else {
    EXPECT_FALSE(simd::SetLevel(simd::Level::kAvx512));
    EXPECT_EQ(simd::ActiveLevel(), simd::Level::kScalar);
  }
}

TEST(SimdDispatchTest, ParseLevelAcceptsAllSpellings) {
  simd::Level level = simd::Level::kAvx2;
  EXPECT_TRUE(simd::ParseLevel("scalar", &level));
  EXPECT_EQ(level, simd::Level::kScalar);
  EXPECT_TRUE(simd::ParseLevel("SCALAR", &level));
  EXPECT_EQ(level, simd::Level::kScalar);
  EXPECT_TRUE(simd::ParseLevel("avx2", &level));
  EXPECT_EQ(level, simd::Level::kAvx2);
  EXPECT_TRUE(simd::ParseLevel("Avx2", &level));
  EXPECT_EQ(level, simd::Level::kAvx2);
  EXPECT_TRUE(simd::ParseLevel("avx512", &level));
  EXPECT_EQ(level, simd::Level::kAvx512);
  EXPECT_TRUE(simd::ParseLevel("AVX512", &level));
  EXPECT_EQ(level, simd::Level::kAvx512);
  level = simd::Level::kAvx2;
  EXPECT_FALSE(simd::ParseLevel("avx", &level));
  EXPECT_FALSE(simd::ParseLevel("", &level));
  EXPECT_FALSE(simd::ParseLevel("sse", &level));
  EXPECT_EQ(level, simd::Level::kAvx2);  // rejected tokens leave *out alone
}

// ---------------------------------------------------------------------------
// PoissonBinomial::EvaluateBatch — the add/swap fold.
// ---------------------------------------------------------------------------

void EvaluateBatchSweep(simd::Level level) {
  ScopedSimdLevel scoped(level);
  ASSERT_TRUE(scoped.ok());
  Rng rng(90101);
  for (int n : {0, 1, 7, 38}) {
    std::vector<double> committed;
    for (int i = 0; i < n; ++i) committed.push_back(rng.Uniform(0.05, 0.95));
    const PoissonBinomial pb(committed);
    std::vector<double> pool(kMaxSweep + 8);
    for (double& p : pool) p = rng.Uniform();
    pool[0] = 0.0;  // degenerate candidates in every offset window
    pool[4] = 1.0;
    pool[5] = 0.5;
    for (const std::size_t offset : kOffsets) {
      for (const std::size_t count : SweepSizes()) {
        const double* probs = pool.data() + offset;
        // Odd tail thresholds, including out-of-range ones.
        for (int k : {-1, 0, 1, (n + 1) / 2 + 1, n + 1, n + 2}) {
          std::vector<double> tails(count), cdfs(count);
          pb.EvaluateBatch(probs, count, k, k - 1, tails.data(),
                           cdfs.data());
          for (std::size_t j = 0; j < count; ++j) {
            PoissonBinomial copy = pb;
            copy.AddTrial(probs[j]);
            ASSERT_EQ(tails[j], copy.TailAtLeast(k))
                << simd::LevelName(level) << " n=" << n << " count=" << count
                << " offset=" << offset << " k=" << k << " j=" << j;
            ASSERT_EQ(cdfs[j], copy.CdfAtMost(k - 1))
                << simd::LevelName(level) << " n=" << n << " count=" << count
                << " offset=" << offset << " k=" << k << " j=" << j;
          }
        }
      }
    }
  }
}

TEST(SimdDispatchTest, EvaluateBatchMatchesScalarCompositionScalarLevel) {
  EvaluateBatchSweep(simd::Level::kScalar);
}

TEST(SimdDispatchTest, EvaluateBatchMatchesScalarCompositionAvx2Level) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 unavailable";
  EvaluateBatchSweep(simd::Level::kAvx2);
}

TEST(SimdDispatchTest, EvaluateBatchMatchesScalarCompositionAvx512Level) {
  if (!simd::Avx512Available()) GTEST_SKIP() << "AVX-512 unavailable";
  EvaluateBatchSweep(simd::Level::kAvx512);
}

// ---------------------------------------------------------------------------
// PoissonBinomial::EvaluateRemoveBatch — the remove fold.
// ---------------------------------------------------------------------------

void RemoveBatchSweep(simd::Level level) {
  ScopedSimdLevel scoped(level);
  ASSERT_TRUE(scoped.ok());
  Rng rng(90103);
  for (int n : {1, 2, 9, 41}) {
    // Trials spanning both deconvolution regimes plus the exact inverses.
    std::vector<double> committed;
    committed.push_back(0.0);
    if (n > 1) committed.push_back(1.0);
    while (static_cast<int>(committed.size()) < n) {
      committed.push_back(rng.Uniform(0.05, 0.95));
    }
    const PoissonBinomial pb(committed);
    // Candidate pool cycling through the committed trials so every batch
    // hits forward (p < 1/2), backward (p >= 1/2), and degenerate lanes.
    std::vector<double> pool(kMaxSweep + 8);
    for (std::size_t j = 0; j < pool.size(); ++j) {
      pool[j] = committed[j % committed.size()];
    }
    for (const std::size_t offset : kOffsets) {
      for (const std::size_t count : SweepSizes()) {
        const double* probs = pool.data() + offset;
        for (int k : {-1, 0, 1, n / 2 + 1, n - 1, n}) {
          std::vector<double> tails(count), cdfs(count);
          pb.EvaluateRemoveBatch(probs, count, k, k - 1, tails.data(),
                                 cdfs.data());
          for (std::size_t j = 0; j < count; ++j) {
            PoissonBinomial copy = pb;
            copy.RemoveTrial(probs[j]);
            ASSERT_EQ(tails[j], copy.TailAtLeast(k))
                << simd::LevelName(level) << " n=" << n << " count=" << count
                << " offset=" << offset << " k=" << k << " j=" << j
                << " p=" << probs[j];
            ASSERT_EQ(cdfs[j], copy.CdfAtMost(k - 1))
                << simd::LevelName(level) << " n=" << n << " count=" << count
                << " offset=" << offset << " k=" << k << " j=" << j
                << " p=" << probs[j];
          }
        }
      }
    }
  }
}

TEST(SimdDispatchTest, RemoveBatchMatchesScalarCompositionScalarLevel) {
  RemoveBatchSweep(simd::Level::kScalar);
}

TEST(SimdDispatchTest, RemoveBatchMatchesScalarCompositionAvx2Level) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 unavailable";
  RemoveBatchSweep(simd::Level::kAvx2);
}

TEST(SimdDispatchTest, RemoveBatchMatchesScalarCompositionAvx512Level) {
  if (!simd::Avx512Available()) GTEST_SKIP() << "AVX-512 unavailable";
  RemoveBatchSweep(simd::Level::kAvx512);
}

// ---------------------------------------------------------------------------
// BucketKeyDistribution::ConvolvePositiveMassBatch — the bucket add fold —
// and DeconvolvePositiveMass — the bucket remove fold.
// ---------------------------------------------------------------------------

void BucketBatchSweep(simd::Level level) {
  ScopedSimdLevel scoped(level);
  ASSERT_TRUE(scoped.ok());
  Rng rng(90107);
  for (int workers : {0, 1, 12, 40}) {
    BucketKeyDistribution dist;
    std::vector<std::int64_t> folded_b;
    std::vector<double> folded_q;
    for (int i = 0; i < workers; ++i) {
      folded_b.push_back(1 + static_cast<std::int64_t>(rng.UniformInt(40)));
      folded_q.push_back(rng.Uniform(0.5, 0.95));
      dist.Convolve(folded_b.back(), folded_q.back());
    }
    // Candidate buckets: zeros, small, span-straddling, beyond-span.
    std::vector<std::int64_t> bpool(kMaxSweep + 8);
    std::vector<double> qpool(kMaxSweep + 8);
    for (std::size_t j = 0; j < bpool.size(); ++j) {
      switch (j % 5) {
        case 0: bpool[j] = 0; break;
        case 1: bpool[j] = 1 + static_cast<std::int64_t>(rng.UniformInt(10));
                break;
        case 2: bpool[j] = std::max<std::int64_t>(1, dist.span()); break;
        case 3: bpool[j] = dist.span() + 1 +
                           static_cast<std::int64_t>(rng.UniformInt(20));
                break;
        default: bpool[j] = 2 * dist.span() + 3; break;
      }
      qpool[j] = rng.Uniform(0.5, 1.0);
    }
    for (const std::size_t offset : kOffsets) {
      for (const std::size_t count : SweepSizes()) {
        std::vector<double> out(count);
        dist.ConvolvePositiveMassBatch(bpool.data() + offset,
                                       qpool.data() + offset, count,
                                       out.data());
        for (std::size_t j = 0; j < count; ++j) {
          BucketKeyDistribution copy = dist;
          copy.Convolve(bpool[offset + j], qpool[offset + j]);
          ASSERT_EQ(out[j], copy.PositiveMass())
              << simd::LevelName(level) << " workers=" << workers
              << " count=" << count << " offset=" << offset << " j=" << j
              << " b=" << bpool[offset + j];
        }
      }
    }
    // Remove fold: deconvolving any previously folded worker must equal
    // the scalar copy-deconvolve-sweep bit for bit.
    for (int i = 0; i < workers; ++i) {
      BucketKeyDistribution copy = dist;
      copy.Deconvolve(folded_b[static_cast<std::size_t>(i)],
                      folded_q[static_cast<std::size_t>(i)]);
      ASSERT_EQ(dist.DeconvolvePositiveMass(
                    folded_b[static_cast<std::size_t>(i)],
                    folded_q[static_cast<std::size_t>(i)]),
                copy.PositiveMass())
          << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(SimdDispatchTest, BucketBatchMatchesScalarCompositionScalarLevel) {
  BucketBatchSweep(simd::Level::kScalar);
}

TEST(SimdDispatchTest, BucketBatchMatchesScalarCompositionAvx2Level) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 unavailable";
  BucketBatchSweep(simd::Level::kAvx2);
}

TEST(SimdDispatchTest, BucketBatchMatchesScalarCompositionAvx512Level) {
  if (!simd::Avx512Available()) GTEST_SKIP() << "AVX-512 unavailable";
  BucketBatchSweep(simd::Level::kAvx512);
}

// ---------------------------------------------------------------------------
// BucketKeyDistribution::DeconvolvePositiveMassBatch — the batched bucket
// remove/swap fold (the `deconvolve_mass` kernel).
// ---------------------------------------------------------------------------

void DeconvolveBatchSweep(simd::Level level) {
  ScopedSimdLevel scoped(level);
  ASSERT_TRUE(scoped.ok());
  Rng rng(90113);
  // Worker counts chosen so the backward recurrence sees spans from tiny
  // (vector paths must fall back to the scalar tail) to hundreds of keys.
  for (int workers : {1, 2, 3, 9, 40}) {
    BucketKeyDistribution dist;
    std::vector<std::int64_t> folded_b;
    std::vector<double> folded_q;
    for (int i = 0; i < workers; ++i) {
      // Buckets from 1 (2b below every vector width) through 40 (deep
      // lane-width blocks), qualities across the whole legal range
      // including the q = 1 degenerate edge.
      folded_b.push_back(1 + static_cast<std::int64_t>(rng.UniformInt(40)));
      folded_q.push_back(i % 7 == 0 ? 1.0 : rng.Uniform(0.5, 0.95));
      dist.Convolve(folded_b.back(), folded_q.back());
    }
    // Candidate pool cycling through the folded workers, with b = 0
    // no-op candidates interleaved so every batch exercises the shared
    // committed-mass shortcut.
    std::vector<std::int64_t> bpool(kMaxSweep + 8);
    std::vector<double> qpool(kMaxSweep + 8);
    for (std::size_t j = 0; j < bpool.size(); ++j) {
      if (j % 5 == 4) {
        bpool[j] = 0;
        qpool[j] = rng.Uniform(0.5, 1.0);  // ignored for b == 0
      } else {
        const std::size_t i = j % folded_b.size();
        bpool[j] = folded_b[i];
        qpool[j] = folded_q[i];
      }
    }
    for (const std::size_t offset : kOffsets) {
      for (const std::size_t count : SweepSizes()) {
        std::vector<double> out(count);
        dist.DeconvolvePositiveMassBatch(bpool.data() + offset,
                                         qpool.data() + offset, count,
                                         out.data());
        for (std::size_t j = 0; j < count; ++j) {
          BucketKeyDistribution copy = dist;
          copy.Deconvolve(bpool[offset + j], qpool[offset + j]);
          ASSERT_EQ(out[j], copy.PositiveMass())
              << simd::LevelName(level) << " workers=" << workers
              << " count=" << count << " offset=" << offset << " j=" << j
              << " b=" << bpool[offset + j] << " q=" << qpool[offset + j];
        }
      }
    }
  }
}

TEST(SimdDispatchTest, DeconvolveBatchMatchesScalarCompositionScalarLevel) {
  DeconvolveBatchSweep(simd::Level::kScalar);
}

TEST(SimdDispatchTest, DeconvolveBatchMatchesScalarCompositionAvx2Level) {
  if (!simd::Avx2Available()) GTEST_SKIP() << "AVX2 unavailable";
  DeconvolveBatchSweep(simd::Level::kAvx2);
}

TEST(SimdDispatchTest, DeconvolveBatchMatchesScalarCompositionAvx512Level) {
  if (!simd::Avx512Available()) GTEST_SKIP() << "AVX-512 unavailable";
  DeconvolveBatchSweep(simd::Level::kAvx512);
}

// ---------------------------------------------------------------------------
// Cross-level equality: the same batched calls under scalar and each
// available vector level produce bit-identical outputs (stronger than all
// matching the composition — it pins the dispatch seam itself).
// ---------------------------------------------------------------------------

/// The vector levels this host can actually run (compiled + supported).
std::vector<simd::Level> AvailableVectorLevels() {
  std::vector<simd::Level> levels;
  if (simd::Avx2Available()) levels.push_back(simd::Level::kAvx2);
  if (simd::Avx512Available()) levels.push_back(simd::Level::kAvx512);
  return levels;
}

TEST(SimdDispatchTest, LevelsAgreeBitForBitOnRandomBatches) {
  const std::vector<simd::Level> vector_levels = AvailableVectorLevels();
  if (vector_levels.empty()) GTEST_SKIP() << "no vector level available";
  Rng rng(90109);
  std::vector<double> committed;
  for (int i = 0; i < 29; ++i) committed.push_back(rng.Uniform(0.05, 0.95));
  const PoissonBinomial pb(committed);
  std::vector<double> probs;
  for (int j = 0; j < 153; ++j) probs.push_back(rng.Uniform());
  const int k = 16;

  BucketKeyDistribution dist;
  std::vector<std::int64_t> folded_b;
  std::vector<double> folded_q;
  for (int i = 0; i < 23; ++i) {
    folded_b.push_back(1 + static_cast<std::int64_t>(rng.UniformInt(30)));
    folded_q.push_back(rng.Uniform(0.5, 0.95));
    dist.Convolve(folded_b.back(), folded_q.back());
  }
  std::vector<std::int64_t> bs;
  std::vector<double> qs;
  for (int j = 0; j < 153; ++j) {
    const std::size_t i = static_cast<std::size_t>(j) % folded_b.size();
    bs.push_back(j % 6 == 5 ? 0 : folded_b[i]);
    qs.push_back(folded_q[i]);
  }

  std::vector<double> tails_s(probs.size()), cdfs_s(probs.size());
  std::vector<double> deconv_s(bs.size());
  {
    ScopedSimdLevel scalar(simd::Level::kScalar);
    pb.EvaluateBatch(probs.data(), probs.size(), k, k - 1, tails_s.data(),
                     cdfs_s.data());
    dist.DeconvolvePositiveMassBatch(bs.data(), qs.data(), bs.size(),
                                     deconv_s.data());
  }
  for (const simd::Level level : vector_levels) {
    std::vector<double> tails_v(probs.size()), cdfs_v(probs.size());
    std::vector<double> deconv_v(bs.size());
    {
      ScopedSimdLevel scoped(level);
      ASSERT_TRUE(scoped.ok());
      pb.EvaluateBatch(probs.data(), probs.size(), k, k - 1, tails_v.data(),
                       cdfs_v.data());
      dist.DeconvolvePositiveMassBatch(bs.data(), qs.data(), bs.size(),
                                       deconv_v.data());
    }
    for (std::size_t j = 0; j < probs.size(); ++j) {
      ASSERT_EQ(tails_s[j], tails_v[j]) << simd::LevelName(level) << " " << j;
      ASSERT_EQ(cdfs_s[j], cdfs_v[j]) << simd::LevelName(level) << " " << j;
    }
    for (std::size_t j = 0; j < bs.size(); ++j) {
      ASSERT_EQ(deconv_s[j], deconv_v[j])
          << simd::LevelName(level) << " deconv " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end: solvers return the identical jury at every dispatch level
// (the JURYOPT_SIMD=scalar vs =avx2 vs =avx512 equality run, in-process).
// Annealing's polish scans drive the batched remove and swap folds —
// including the bucket deconvolve kernel — so this covers every kernel on
// every available level, not just the add fold.
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, SolversReturnIdenticalJuriesAcrossLevels) {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  for (const simd::Level vector_level : AvailableVectorLevels()) {
    levels.push_back(vector_level);
  }
  if (levels.size() < 2) GTEST_SKIP() << "no vector level available";
  Rng rng(90111);
  const BucketBvObjective bucket;
  const MajorityObjective majority;
  for (int inst = 0; inst < 8; ++inst) {
    JspInstance instance;
    instance.candidates = RandomPool(&rng, 12, 0.4, 0.95, 0.05, 0.4);
    instance.budget = rng.Uniform(0.3, 1.0);
    instance.alpha = 0.5;
    const std::uint64_t seed = 7100 + static_cast<std::uint64_t>(inst);

    JspSolution ref_sa, ref_greedy, ref_mv_greedy, ref_ex, ref_bb;
    bool have_ref = false;
    for (const simd::Level level : levels) {
      ScopedSimdLevel scoped(level);
      ASSERT_TRUE(scoped.ok());
      Rng sa_rng(seed);
      const auto sa = SolveAnnealing(instance, bucket, &sa_rng).value();
      const auto greedy =
          SolveGreedyMarginalGain(instance, bucket, {}).value();
      const auto mv_greedy =
          SolveGreedyMarginalGain(instance, majority, {}).value();
      const auto ex = SolveExhaustive(instance, bucket, {}).value();
      const auto bb = SolveBranchAndBound(instance, bucket, {}).value();
      if (!have_ref) {
        ref_sa = sa;
        ref_greedy = greedy;
        ref_mv_greedy = mv_greedy;
        ref_ex = ex;
        ref_bb = bb;
        have_ref = true;
        continue;
      }
      EXPECT_EQ(sa.selected, ref_sa.selected) << "sa inst " << inst;
      EXPECT_EQ(sa.jq, ref_sa.jq) << "sa inst " << inst;
      EXPECT_EQ(greedy.selected, ref_greedy.selected) << "greedy " << inst;
      EXPECT_EQ(greedy.jq, ref_greedy.jq) << "greedy " << inst;
      EXPECT_EQ(mv_greedy.selected, ref_mv_greedy.selected)
          << "mv greedy " << inst;
      EXPECT_EQ(mv_greedy.jq, ref_mv_greedy.jq) << "mv greedy " << inst;
      EXPECT_EQ(ex.selected, ref_ex.selected) << "exhaustive " << inst;
      EXPECT_EQ(ex.jq, ref_ex.jq) << "exhaustive " << inst;
      EXPECT_EQ(bb.selected, ref_bb.selected) << "branch-bound " << inst;
      EXPECT_EQ(bb.jq, ref_bb.jq) << "branch-bound " << inst;
    }
  }
}

}  // namespace
}  // namespace jury
