// Cross-module, end-to-end scenarios: the full OPTJS pipeline from worker
// pool to verified decision quality, including the Fig. 10(d) claim that JQ
// predicts realized accuracy.

#include "gtest/gtest.h"
#include "core/budget_table.h"
#include "core/mvjs.h"
#include "core/optjs.h"
#include "crowd/estimators.h"
#include "crowd/pool.h"
#include "crowd/sentiment.h"
#include "crowd/vote_sim.h"
#include "jq/bucket.h"
#include "strategy/bayesian.h"
#include "util/rng.h"
#include "util/stats.h"

namespace jury {
namespace {

TEST(IntegrationTest, JqPredictsRealizedAccuracy) {
  // Select a jury, then actually run the crowd many times: the empirical
  // accuracy of BV's decisions must match the predicted JQ (Fig. 10(d)).
  Rng rng(101);
  crowd::PoolConfig pool_config;
  pool_config.num_workers = 20;
  const auto pool = crowd::GeneratePool(pool_config, &rng).value();

  JspInstance instance;
  instance.candidates = pool;
  instance.budget = 0.5;
  instance.alpha = 0.5;
  Rng solver_rng(7);
  const auto solution = SolveOptjs(instance, &solver_rng).value();
  ASSERT_FALSE(solution.selected.empty());
  const Jury jury = solution.ToJury(instance);

  const BayesianVoting bv;
  Rng world(31);
  int correct = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) {
    const int truth = crowd::SampleTruth(instance.alpha, &world);
    const Votes votes = crowd::SimulateVotes(jury, truth, &world);
    correct += (bv.Decide(jury, votes, instance.alpha, &world) == truth);
  }
  const double accuracy = static_cast<double>(correct) / trials;
  EXPECT_NEAR(accuracy, solution.jq, 0.015);
}

TEST(IntegrationTest, EndToEndSyntheticComparisonFavorsOptjs) {
  // One point of Fig. 6: default parameters, averaged over repetitions.
  Rng rng(103);
  OnlineStats optjs_jq, mvjs_jq;
  for (int rep = 0; rep < 8; ++rep) {
    crowd::PoolConfig config;
    config.num_workers = 25;
    Rng pool_rng = rng.Fork();
    const auto pool = crowd::GeneratePool(config, &pool_rng).value();
    JspInstance instance;
    instance.candidates = pool;
    instance.budget = 0.5;
    instance.alpha = 0.5;
    Rng r1 = rng.Fork();
    Rng r2 = rng.Fork();
    optjs_jq.Add(SolveOptjs(instance, &r1).value().jq);
    mvjs_jq.Add(SolveMvjs(instance, &r2).value().jq);
  }
  EXPECT_GE(optjs_jq.mean(), mvjs_jq.mean());
}

TEST(IntegrationTest, SentimentDatasetDrivesJsp) {
  // The §6.2.2 protocol in miniature: per-question candidate sets from the
  // simulated AMT campaign, solved under a budget with synthetic costs.
  Rng rng(107);
  const auto dataset =
      crowd::MakeSentimentDataset(crowd::SentimentConfig{}, &rng).value();

  OnlineStats jq_stats;
  for (std::size_t q = 0; q < 25; ++q) {  // a slice of the 600 questions
    const auto& task = dataset.campaign.tasks[q];
    JspInstance instance;
    instance.budget = 0.5;
    instance.alpha = 0.5;
    for (const auto& answer : task.answers) {
      instance.candidates.emplace_back(
          "w" + std::to_string(answer.worker),
          dataset.estimated_quality[answer.worker],
          rng.TruncatedGaussian(0.05, 0.2, 0.01, 1e9));
    }
    Rng solver_rng = rng.Fork();
    const auto solution = SolveOptjs(instance, &solver_rng).value();
    EXPECT_LE(solution.cost, instance.budget + 1e-12);
    jq_stats.Add(solution.jq);
  }
  // Selected juries should be informative: mean JQ well above a coin flip.
  EXPECT_GT(jq_stats.mean(), 0.75);
}

TEST(IntegrationTest, BudgetTableIsActionable) {
  // The Fig. 1 user journey: build the table, pick the knee, verify the
  // selected jury's predicted quality holds up in simulation.
  Rng rng(109);
  crowd::PoolConfig config;
  config.num_workers = 15;
  Rng pool_rng(113);
  const auto pool = crowd::GeneratePool(config, &pool_rng).value();
  const auto rows =
      BuildBudgetQualityTable(pool, {0.2, 0.4, 0.6, 0.8}, 0.5, &rng).value();
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].jq, rows[i - 1].jq - 1e-9);
  }
}

TEST(IntegrationTest, EstimatedQualitiesAreGoodEnoughForSelection) {
  // Quality estimation noise (empirical estimator) should not destroy the
  // selection: juries chosen with estimated qualities perform close to
  // juries chosen with the latent truth.
  Rng rng(127);
  crowd::CampaignConfig config;
  config.num_tasks = 200;
  config.tasks_per_hit = 20;
  config.assignments_per_hit = 10;
  config.num_workers = 10;
  std::vector<double> latent;
  for (int i = 0; i < 10; ++i) latent.push_back(rng.Uniform(0.55, 0.95));
  const std::vector<int> quota(10, 10);
  const auto campaign =
      crowd::SimulateCampaign(config, latent, quota, &rng).value();
  const auto estimated = crowd::EstimateQualitiesEmpirical(campaign).value();

  auto make_instance = [&](const std::vector<double>& qs) {
    JspInstance instance;
    instance.budget = 0.3;
    instance.alpha = 0.5;
    for (int i = 0; i < 10; ++i) {
      instance.candidates.emplace_back("w" + std::to_string(i),
                                       qs[static_cast<std::size_t>(i)],
                                       0.05 + 0.01 * i);
    }
    return instance;
  };
  Rng r1(1), r2(1);
  const auto with_latent = SolveOptjs(make_instance(latent), &r1).value();
  const auto with_estimate =
      SolveOptjs(make_instance(estimated), &r2).value();
  // Evaluate BOTH selections under the latent qualities.
  const auto latent_instance = make_instance(latent);
  JspSolution estimate_as_latent = with_estimate;
  const double jq_latent_selection =
      EstimateJq(with_latent.ToJury(latent_instance), 0.5).value();
  const double jq_estimate_selection =
      EstimateJq(estimate_as_latent.ToJury(latent_instance), 0.5).value();
  EXPECT_NEAR(jq_estimate_selection, jq_latent_selection, 0.08);
}

}  // namespace
}  // namespace jury
