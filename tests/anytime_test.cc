// The anytime-quality property, swept over every registry solver: a solve
// stopped at a fraction of the full solve's work budget still returns a
// *valid* jury (feasible under the budget, in-range indices), whose JQ is
// bounded by the full solve's above and the empty jury's below, and —
// because `max_work_units` is a per-strand budget checked exactly — the
// stopped solve is bit-identical across thread counts.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/solve.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury::api {
namespace {

using jury::testing::RandomPool;

constexpr double kAlpha = 0.5;
// Empty-jury baseline for the binary objectives: max(alpha, 1 - alpha).
constexpr double kEmptyJq = 0.5;

SolveRequest MakeRequest(const std::string& solver, std::size_t threads) {
  SolveRequest request;
  request.solver = solver;
  request.budget = 0.8;
  request.alpha = kAlpha;
  request.rng_seed = 20150323;
  request.tuning.annealing.num_restarts = 4;
  request.tuning.annealing.num_threads = threads;
  request.tuning.greedy.num_threads = threads;
  request.tuning.exhaustive.num_threads = threads;
  request.tuning.optjs.num_threads = threads;
  request.tuning.optjs.annealing.num_restarts = 4;
  request.tuning.mvjs.annealing.num_restarts = 4;
  request.tuning.mvjs.annealing.num_threads = threads;
  return request;
}

void ExpectValidJury(const SolveReport& report, double budget,
                     std::size_t pool_size, const std::string& label) {
  EXPECT_LE(report.solution.cost, budget + 1e-9) << label;
  std::vector<std::size_t> selected = report.solution.selected;
  std::sort(selected.begin(), selected.end());
  EXPECT_TRUE(std::adjacent_find(selected.begin(), selected.end()) ==
              selected.end())
      << label << ": duplicate members";
  for (const std::size_t idx : selected) {
    EXPECT_LT(idx, pool_size) << label;
  }
}

class AnytimeQualityTest : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(AllSolvers, AnytimeQualityTest,
                         ::testing::ValuesIn(RegisteredSolverNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST_P(AnytimeQualityTest, StoppedSolvesAreValidBoundedAndDeterministic) {
  const std::string solver = GetParam();
  Rng pool_rng(17);
  const std::vector<Worker> pool =
      RandomPool(&pool_rng, 12, 0.55, 0.95, 0.05, 0.3);
  auto context = PoolPlanContext::Plan(pool).value();

  // The unlimited reference: its work_units is the total tick count the
  // budgeted runs below are scaled from.
  const SolveRequest full_request = MakeRequest(solver, 1);
  auto full = context.Solve(full_request);
  ASSERT_TRUE(full.ok()) << solver << ": " << full.status();
  EXPECT_FALSE(full.value().terminated_early) << solver;
  const std::uint64_t full_work = full.value().work_units;
  ASSERT_GT(full_work, 0u) << solver << " reported no work";

  for (const std::uint64_t divisor : {std::uint64_t{4}, std::uint64_t{2}}) {
    const std::uint64_t cap = std::max<std::uint64_t>(1, full_work / divisor);
    const std::string label =
        solver + " at 1/" + std::to_string(divisor) + " work";
    std::vector<JspSolution> per_thread;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      SolveRequest request = MakeRequest(solver, threads);
      request.max_work_units = cap;
      auto report = context.Solve(request);
      ASSERT_TRUE(report.ok()) << label << ": " << report.status();
      ExpectValidJury(report.value(), request.budget, pool.size(), label);
      // Anytime bounds: never better than the finished solve (the
      // incumbent is monotone within a strand and the stopped strands
      // are prefixes of the full ones), never worse than doing nothing.
      EXPECT_LE(report.value().solution.jq,
                full.value().solution.jq + 1e-12)
          << label;
      EXPECT_GE(report.value().solution.jq, kEmptyJq - 1e-12) << label;
      EXPECT_TRUE(report.value().limits_active) << label;
      per_thread.push_back(report.value().solution);
    }
    // The per-strand budget makes the stop point a pure function of the
    // request: thread count must not change the answer bit-for-bit.
    EXPECT_EQ(per_thread[0].selected, per_thread[1].selected) << label;
    EXPECT_EQ(per_thread[0].jq, per_thread[1].jq) << label;
    EXPECT_EQ(per_thread[0].cost, per_thread[1].cost) << label;
  }
}

}  // namespace
}  // namespace jury::api
