#include "gtest/gtest.h"
#include "core/allocation.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::RandomPool;

AllocationTask MakeTask(Rng* rng, int n, double alpha = 0.5) {
  AllocationTask task;
  task.candidates = RandomPool(rng, n, 0.55, 0.95, 0.05, 0.3);
  task.alpha = alpha;
  return task;
}

TEST(AllocationTest, StaysWithinGlobalBudget) {
  Rng rng(1);
  std::vector<AllocationTask> tasks;
  for (int i = 0; i < 5; ++i) tasks.push_back(MakeTask(&rng, 8));
  Rng solver_rng(7);
  const auto result = AllocateBudget(tasks, 1.0, &solver_rng).value();
  EXPECT_LE(result.total_granted, 1.0 + 1e-9);
  EXPECT_LE(result.total_spent, result.total_granted + 1e-9);
  for (const auto& t : result.tasks) {
    EXPECT_LE(t.solution.cost, t.budget + 1e-9);
  }
}

TEST(AllocationTest, BeatsUniformSplit) {
  // Heterogeneous tasks: some have cheap strong workers (need little),
  // some only expensive ones (need more). Marginal allocation should beat
  // an equal split on mean JQ.
  Rng rng(3);
  std::vector<AllocationTask> tasks;
  for (int i = 0; i < 6; ++i) tasks.push_back(MakeTask(&rng, 10));
  const double global = 1.2;

  Rng r1(11);
  const auto smart = AllocateBudget(tasks, global, &r1).value();

  Rng r2(11);
  double uniform_mean = 0.0;
  for (const auto& task : tasks) {
    JspInstance instance;
    instance.candidates = task.candidates;
    instance.budget = global / 6.0;
    instance.alpha = task.alpha;
    uniform_mean += SolveOptjs(instance, &r2).value().jq;
  }
  uniform_mean /= 6.0;
  EXPECT_GE(smart.mean_jq, uniform_mean - 1e-6);
}

TEST(AllocationTest, ConfidentPriorTasksGetLess) {
  // A task whose prior already answers it should absorb less budget than
  // an ambiguous one with the same pool.
  Rng rng(5);
  const auto pool = RandomPool(&rng, 8, 0.6, 0.8, 0.1, 0.3);
  AllocationTask easy;
  easy.candidates = pool;
  easy.alpha = 0.98;
  AllocationTask hard;
  hard.candidates = pool;
  hard.alpha = 0.5;
  Rng solver_rng(13);
  const auto result =
      AllocateBudget({easy, hard}, 0.8, &solver_rng).value();
  EXPECT_LE(result.tasks[0].budget, result.tasks[1].budget + 1e-9);
}

TEST(AllocationTest, StopsWhenMoneyStopsHelping) {
  // One task whose full pool costs 0.3: granting more than that is waste;
  // the allocator should stop early.
  Rng rng(7);
  AllocationTask task;
  task.candidates = {{"a", 0.8, 0.1}, {"b", 0.7, 0.1}, {"c", 0.75, 0.1}};
  Rng solver_rng(17);
  AllocationOptions options;
  options.increment = 0.1;
  const auto result =
      AllocateBudget({task}, 100.0, &solver_rng, options).value();
  EXPECT_LE(result.total_granted, 0.5 + 1e-9);
  // The jury should be the whole pool.
  EXPECT_EQ(result.tasks[0].solution.selected.size(), 3u);
}

TEST(AllocationTest, EmptyTaskListIsFine) {
  Rng rng(9);
  const auto result = AllocateBudget({}, 1.0, &rng).value();
  EXPECT_TRUE(result.tasks.empty());
  EXPECT_DOUBLE_EQ(result.total_granted, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_jq, 0.0);
}

TEST(AllocationTest, ValidatesArguments) {
  Rng rng(11);
  EXPECT_FALSE(AllocateBudget({}, -1.0, &rng).ok());
  AllocationOptions bad;
  bad.increment = 0.0;
  EXPECT_FALSE(AllocateBudget({}, 1.0, &rng, bad).ok());
}

}  // namespace
}  // namespace jury
