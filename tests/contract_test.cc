// Contract (death) tests: programming errors must fail fast through
// JURY_CHECK rather than corrupting state. Anticipated runtime failures,
// by contrast, surface as Status — covered in the per-module tests.

#include "gtest/gtest.h"
#include "model/jury.h"
#include "strategy/majority.h"
#include "util/check.h"
#include "util/histogram.h"
#include "util/math.h"
#include "util/result.h"
#include "util/rng.h"

namespace jury {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, CheckMacroAborts) {
  EXPECT_DEATH(JURY_CHECK(1 == 2) << "context", "JURY_CHECK failed");
  EXPECT_DEATH(JURY_CHECK_EQ(1, 2), "JURY_CHECK failed");
  EXPECT_DEATH(JURY_CHECK_LT(2, 1), "JURY_CHECK failed");
}

TEST(ContractDeathTest, ResultValueOnErrorAborts) {
  Result<int> failed(Status::NotFound("gone"));
  EXPECT_DEATH((void)failed.value(), "Result::value\\(\\) on error");
}

TEST(ContractDeathTest, ResultFromOkStatusAborts) {
  EXPECT_DEATH(Result<int>{Status::OK()},
               "must not be constructed from an OK status");
}

TEST(ContractDeathTest, JuryWorkerOutOfRangeAborts) {
  const Jury jury = Jury::FromQualities({0.7});
  EXPECT_DEATH((void)jury.worker(5), "JURY_CHECK failed");
}

TEST(ContractDeathTest, EmptyJuryMinQualityAborts) {
  const Jury jury;
  EXPECT_DEATH((void)jury.MinQuality(), "JURY_CHECK failed");
}

TEST(ContractDeathTest, MisalignedVotesAbort) {
  const MajorityVoting mv;
  const Jury jury = Jury::FromQualities({0.7, 0.8});
  EXPECT_DEATH((void)mv.ProbZero(jury, {0, 1, 0}, 0.5), "JURY_CHECK failed");
}

TEST(ContractDeathTest, LogOddsDomainIsEnforced) {
  EXPECT_DEATH((void)LogOdds(0.0), "LogOdds requires q in \\(0,1\\)");
  EXPECT_DEATH((void)LogOdds(1.0), "LogOdds requires q in \\(0,1\\)");
}

TEST(ContractDeathTest, RngUniformIntNeedsPositiveBound) {
  Rng rng(1);
  EXPECT_DEATH((void)rng.UniformInt(0), "JURY_CHECK failed");
}

TEST(ContractDeathTest, HistogramValidatesConstruction) {
  EXPECT_DEATH(Histogram(1.0, 0.0, 4), "JURY_CHECK failed");
  EXPECT_DEATH(Histogram(0.0, 1.0, 0), "JURY_CHECK failed");
}

}  // namespace
}  // namespace jury
