// Tests for the sharded worker-pool summaries: every per-shard aggregate
// (cost bounds, quality histogram, top-k slates, fence keys) must equal a
// brute-force recomputation over the shard's index slice, and ApplyDelta
// must rebuild exactly the shards containing changed indices (epoch tags
// prove it).

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "model/sharded_pool.h"
#include "model/worker_pool_view.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::RandomPool;

// Brute-force slate: shard indices sorted by key descending, ties by
// ascending index, truncated to k.
std::vector<std::size_t> BruteSlate(std::span<const double> keys,
                                    std::size_t begin, std::size_t end,
                                    std::size_t k) {
  std::vector<std::size_t> order;
  for (std::size_t i = begin; i < end; ++i) order.push_back(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (keys[a] != keys[b]) return keys[a] > keys[b];
                     return a < b;
                   });
  order.resize(std::min(k, order.size()));
  return order;
}

void CheckShardsAgainstBruteForce(const ShardedWorkerPool& pool) {
  const WorkerPoolView& view = pool.view();
  const std::size_t n = view.size();
  const std::size_t shard_size = pool.options().shard_size;
  const std::size_t slate_k = pool.options().slate_k;
  ASSERT_EQ(pool.num_shards(), (n + shard_size - 1) / shard_size);
  for (std::size_t s = 0; s < pool.num_shards(); ++s) {
    const ShardedWorkerPool::Shard& shard = pool.shard(s);
    EXPECT_EQ(shard.begin, s * shard_size);
    EXPECT_EQ(shard.end, std::min(n, (s + 1) * shard_size));
    ASSERT_GT(shard.population(), 0u);

    double min_cost = std::numeric_limits<double>::infinity();
    double max_cost = -std::numeric_limits<double>::infinity();
    std::array<std::uint32_t, ShardedWorkerPool::kHistogramBins> histogram{};
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      min_cost = std::min(min_cost, view.cost()[i]);
      max_cost = std::max(max_cost, view.cost()[i]);
      const double q = view.quality()[i];
      const std::size_t bin = std::min(
          ShardedWorkerPool::kHistogramBins - 1,
          static_cast<std::size_t>(q * ShardedWorkerPool::kHistogramBins));
      ++histogram[bin];
    }
    EXPECT_EQ(shard.min_cost, min_cost) << "shard " << s;
    EXPECT_EQ(shard.max_cost, max_cost) << "shard " << s;
    std::uint64_t histogram_total = 0;
    for (std::size_t b = 0; b < histogram.size(); ++b) {
      EXPECT_EQ(shard.quality_histogram[b], histogram[b])
          << "shard " << s << " bin " << b;
      histogram_total += shard.quality_histogram[b];
    }
    EXPECT_EQ(histogram_total, shard.population());

    for (const auto key : {ShardedWorkerPool::KeyColumn::kNormQuality,
                           ShardedWorkerPool::KeyColumn::kQuality}) {
      const std::span<const double> keys = pool.keys(key);
      const std::vector<std::size_t> expected =
          BruteSlate(keys, shard.begin, shard.end, slate_k);
      EXPECT_EQ(pool.slate(shard, key), expected) << "shard " << s;
      if (expected.size() < shard.population()) {
        // Strict subset: the fence is the smallest slate key, and every
        // pruned member sits at or below it.
        EXPECT_EQ(pool.fence(shard, key), keys[expected.back()]);
        for (std::size_t i = shard.begin; i < shard.end; ++i) {
          if (std::find(expected.begin(), expected.end(), i) ==
              expected.end()) {
            EXPECT_LE(keys[i], pool.fence(shard, key));
          }
        }
      } else {
        EXPECT_EQ(pool.fence(shard, key),
                  -std::numeric_limits<double>::infinity());
      }
    }
  }
}

TEST(ShardedPoolTest, SummariesMatchBruteForce) {
  Rng rng(7701);
  for (const std::size_t shard_size : {std::size_t{16}, std::size_t{64},
                                       std::size_t{1000}, std::size_t{1024}}) {
    const std::vector<Worker> workers = RandomPool(&rng, 1000, 0.0, 1.0, 0.0, 2.0);
    const WorkerPoolView view(workers);
    ShardedPoolOptions options;
    options.shard_size = shard_size;
    options.slate_k = 8;
    const ShardedWorkerPool pool(&view, options);
    CheckShardsAgainstBruteForce(pool);
  }
}

TEST(ShardedPoolTest, RaggedFinalShard) {
  Rng rng(7703);
  const std::vector<Worker> workers = RandomPool(&rng, 130, 0.0, 1.0, 0.1, 1.0);
  const WorkerPoolView view(workers);
  ShardedPoolOptions options;
  options.shard_size = 64;
  const ShardedWorkerPool pool(&view, options);
  ASSERT_EQ(pool.num_shards(), 3u);
  EXPECT_EQ(pool.shard(2).population(), 2u);
  CheckShardsAgainstBruteForce(pool);
}

TEST(ShardedPoolTest, ApplyDeltaRebuildsOnlyTouchedShards) {
  Rng rng(7705);
  std::vector<Worker> workers = RandomPool(&rng, 256, 0.0, 1.0, 0.1, 1.0);
  WorkerPoolView view(workers);
  ShardedPoolOptions options;
  options.shard_size = 64;
  options.slate_k = 4;
  ShardedWorkerPool pool(&view, options);
  ASSERT_EQ(pool.num_shards(), 4u);
  const std::uint64_t epoch0 = pool.shard(0).epoch;
  const std::uint64_t epoch1 = pool.shard(1).epoch;
  const std::uint64_t epoch2 = pool.shard(2).epoch;
  const std::uint64_t epoch3 = pool.shard(3).epoch;

  // Mutate one worker in shard 1 and one in shard 3 through the view's
  // backing vector (the pool aliases the columns), then deliver the
  // delta: duplicates are deduplicated, out-of-range indices ignored.
  workers[70].quality = 0.999;
  workers[70].cost = 0.01;
  workers[200].quality = 0.001;
  workers[200].cost = 9.0;
  view = WorkerPoolView(workers);
  const std::vector<std::size_t> changed = {70, 200, 200, 1u << 20};
  pool.ApplyDelta(changed);

  EXPECT_EQ(pool.shard(0).epoch, epoch0) << "untouched shard rebuilt";
  EXPECT_EQ(pool.shard(2).epoch, epoch2) << "untouched shard rebuilt";
  EXPECT_GT(pool.shard(1).epoch, epoch1) << "touched shard not rebuilt";
  EXPECT_GT(pool.shard(3).epoch, epoch3) << "touched shard not rebuilt";
  CheckShardsAgainstBruteForce(pool);
}

TEST(ShardedPoolTest, EmptyPool) {
  const std::vector<Worker> workers;
  const WorkerPoolView view(workers);
  const ShardedWorkerPool pool(&view);
  EXPECT_EQ(pool.num_shards(), 0u);
  EXPECT_EQ(pool.size(), 0u);
}

}  // namespace
}  // namespace jury
