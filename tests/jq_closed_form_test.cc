#include <algorithm>
#include <tuple>

#include "gtest/gtest.h"
#include "jq/closed_form.h"
#include "jq/exact.h"
#include "strategy/registry.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::Figure2Jury;
using jury::testing::RandomJury;

TEST(MajorityJqTest, MatchesPaperExamples) {
  EXPECT_NEAR(MajorityJq(Figure2Jury(), 0.5).value(), 0.792, 1e-12);
  EXPECT_NEAR(MajorityJq(Jury::FromQualities({0.7, 0.6, 0.6}), 0.5).value(),
              0.696, 1e-12);
}

TEST(MajorityJqTest, SingleWorkerIsQuality) {
  EXPECT_NEAR(MajorityJq(Jury::FromQualities({0.8}), 0.5).value(), 0.8,
              1e-12);
}

TEST(RandomizedMajorityJqTest, ClosedFormIsMeanQuality) {
  const Jury jury = Jury::FromQualities({0.6, 0.7, 0.8});
  EXPECT_NEAR(RandomizedMajorityJq(jury, 0.5).value(), 0.7, 1e-12);
  // Independent of the prior.
  EXPECT_NEAR(RandomizedMajorityJq(jury, 0.9).value(), 0.7, 1e-12);
}

TEST(RandomBallotJqTest, AlwaysHalf) {
  EXPECT_DOUBLE_EQ(RandomBallotJq(Figure2Jury(), 0.5).value(), 0.5);
  EXPECT_DOUBLE_EQ(RandomBallotJq(Figure2Jury(), 0.9).value(), 0.5);
}

TEST(ClosedFormTest, RejectsBadInputs) {
  EXPECT_FALSE(MajorityJq(Jury(), 0.5).ok());
  EXPECT_FALSE(MajorityJq(Figure2Jury(), -0.1).ok());
  EXPECT_FALSE(HalfVotingJq(Jury(), 0.5).ok());
  EXPECT_FALSE(RandomizedMajorityJq(Jury(), 0.5).ok());
  EXPECT_FALSE(RandomBallotJq(Jury(), 0.5).ok());
}

/// Closed forms must agree with the exact 2^n enumeration for every jury
/// size and prior — the defining property.
class ClosedFormAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(ClosedFormAgreementTest, MajorityMatchesEnumeration) {
  const auto [n, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 77 + static_cast<std::uint64_t>(n));
  const Jury jury = RandomJury(&rng, n, 0.3, 0.99);
  auto mv = MakeStrategy("MV").value();
  EXPECT_NEAR(MajorityJq(jury, alpha).value(),
              ExactJq(jury, *mv, alpha).value(), 1e-10);
}

TEST_P(ClosedFormAgreementTest, HalfVotingMatchesEnumeration) {
  const auto [n, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 131 +
          static_cast<std::uint64_t>(n));
  const Jury jury = RandomJury(&rng, n, 0.3, 0.99);
  auto half = MakeStrategy("HALF").value();
  EXPECT_NEAR(HalfVotingJq(jury, alpha).value(),
              ExactJq(jury, *half, alpha).value(), 1e-10);
}

TEST_P(ClosedFormAgreementTest, RandomizedMajorityMatchesEnumeration) {
  const auto [n, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 191 +
          static_cast<std::uint64_t>(n));
  const Jury jury = RandomJury(&rng, n, 0.3, 0.99);
  auto rmv = MakeStrategy("RMV").value();
  EXPECT_NEAR(RandomizedMajorityJq(jury, alpha).value(),
              ExactJq(jury, *rmv, alpha).value(), 1e-10);
}

TEST_P(ClosedFormAgreementTest, RandomBallotMatchesEnumeration) {
  const auto [n, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 239 +
          static_cast<std::uint64_t>(n));
  const Jury jury = RandomJury(&rng, n, 0.3, 0.99);
  auto rbv = MakeStrategy("RBV").value();
  EXPECT_NEAR(RandomBallotJq(jury, alpha).value(),
              ExactJq(jury, *rbv, alpha).value(), 1e-10);
}

TEST_P(ClosedFormAgreementTest, TriadicMatchesEnumeration) {
  const auto [n, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 293 +
          static_cast<std::uint64_t>(n));
  const Jury jury = RandomJury(&rng, n, 0.3, 0.99);
  auto triadic = MakeStrategy("TRIADIC").value();
  EXPECT_NEAR(TriadicJq(jury, alpha).value(),
              ExactJq(jury, *triadic, alpha).value(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClosedFormAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8, 11),
                       ::testing::Values(0.2, 0.5, 0.7),
                       ::testing::Values(1, 2)));

// ------------------------------------------- Counting-strategy engine

TEST(CountingStrategyJqTest, ReproducesMajorityVoting) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const Jury jury = RandomJury(&rng, 7, 0.3, 0.99);
    const double alpha = rng.Uniform(0.1, 0.9);
    const int n = 7;
    const double via_engine =
        CountingStrategyJq(jury, alpha, [n](int z) {
          return 2 * z >= n + 1 ? 1.0 : 0.0;
        }).value();
    EXPECT_NEAR(via_engine, MajorityJq(jury, alpha).value(), 1e-12);
  }
}

TEST(CountingStrategyJqTest, ReproducesRandomizedMajority) {
  Rng rng(19);
  const Jury jury = RandomJury(&rng, 6, 0.4, 0.95);
  const int n = 6;
  const double via_engine =
      CountingStrategyJq(jury, 0.5, [n](int z) {
        return static_cast<double>(z) / n;
      }).value();
  EXPECT_NEAR(via_engine, RandomizedMajorityJq(jury, 0.5).value(), 1e-12);
}

TEST(CountingStrategyJqTest, CustomSupermajorityMatchesEnumeration) {
  // A two-thirds supermajority rule (abstaining to 1 otherwise) — a rule
  // the library does not ship, validated against brute force.
  class SuperMajority final : public VotingStrategy {
   public:
    std::string name() const override { return "SUPER"; }
    StrategyKind kind() const override {
      return StrategyKind::kDeterministic;
    }
    double ProbZero(const Jury& jury, const Votes& votes,
                    double /*alpha*/) const override {
      return 3 * CountZeros(votes) >= 2 * static_cast<int>(jury.size())
                 ? 1.0
                 : 0.0;
    }
  };
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const Jury jury = RandomJury(&rng, 9, 0.4, 0.95);
    const double alpha = rng.Uniform(0.2, 0.8);
    const SuperMajority rule;
    const double exact = ExactJq(jury, rule, alpha).value();
    const double via_engine =
        CountingStrategyJq(jury, alpha, [](int z) {
          return 3 * z >= 18 ? 1.0 : 0.0;
        }).value();
    EXPECT_NEAR(via_engine, exact, 1e-12);
  }
}

TEST(CountingStrategyJqTest, RejectsBadRules) {
  const Jury jury = Figure2Jury();
  EXPECT_FALSE(CountingStrategyJq(jury, 0.5, nullptr).ok());
  EXPECT_FALSE(
      CountingStrategyJq(jury, 0.5, [](int) { return 1.5; }).ok());
}

TEST(CountingStrategyJqTest, BvStillDominatesCustomCountingRules) {
  // Corollary 1 applied to arbitrary counting rules: none beats BV.
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    const Jury jury = RandomJury(&rng, 6, 0.3, 0.99);
    const double alpha = rng.Uniform(0.1, 0.9);
    const double bv = ExactJqBv(jury, alpha).value();
    // Random monotone counting rule.
    std::vector<double> h(7);
    for (auto& x : h) x = rng.Uniform();
    std::sort(h.begin(), h.end());
    const double counting =
        CountingStrategyJq(jury, alpha, [&](int z) {
          return h[static_cast<std::size_t>(z)];
        }).value();
    EXPECT_LE(counting, bv + 1e-12);
  }
}

TEST(ClosedFormTest, CondorcetJuryTheorem) {
  // With identical qualities q > 0.5 and alpha = 0.5, MV quality is
  // non-decreasing in the (odd) jury size — the classic Condorcet jury
  // theorem, and the structure behind the OddTopK heuristic.
  for (double q : {0.55, 0.7, 0.9}) {
    double prev = 0.0;
    for (int n = 1; n <= 21; n += 2) {
      const Jury jury = Jury::FromQualities(
          std::vector<double>(static_cast<std::size_t>(n), q));
      const double jq = MajorityJq(jury, 0.5).value();
      EXPECT_GE(jq, prev - 1e-12) << "q=" << q << " n=" << n;
      prev = jq;
    }
  }
}

TEST(ClosedFormTest, LargeJuryOfGoodWorkersApproachesOne) {
  const Jury jury = Jury::FromQualities(std::vector<double>(101, 0.7));
  EXPECT_GT(MajorityJq(jury, 0.5).value(), 0.99);
}

TEST(ClosedFormTest, ScalesToHundredsOfWorkers) {
  // The DP is polynomial; 501 workers must be exact and fast.
  const Jury jury = Jury::FromQualities(std::vector<double>(501, 0.6));
  const double jq = MajorityJq(jury, 0.5).value();
  EXPECT_GT(jq, 0.999);
  EXPECT_LE(jq, 1.0);
}

}  // namespace
}  // namespace jury
