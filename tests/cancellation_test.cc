// Unit tests of the cooperative-cancellation primitives (util/cancellation.h)
// and their surfacing through the solve API: token chaining, stop-reason
// precedence, exact work budgets, request validation of the new limit
// fields, and the report-JSON gating that keeps limit-free reports
// byte-identical to the historical layout.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "api/registry.h"
#include "api/solve.h"
#include "core/budget_table.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/cancellation.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::Figure1Workers;

TEST(CancelTokenTest, FreshTokenReportsNone) {
  CancelToken token;
  EXPECT_EQ(token.Check(), StopReason::kNone);
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.has_deadline());
}

TEST(CancelTokenTest, RequestCancelIsStickyAndIdempotent) {
  CancelToken token;
  token.RequestCancel();
  token.RequestCancel();
  EXPECT_EQ(token.Check(), StopReason::kCancelled);
  EXPECT_TRUE(token.cancel_requested());
}

TEST(CancelTokenTest, ExpiredDeadlineReportsDeadline) {
  // A zero-width deadline is already past by the first Check().
  CancelToken token(1e-6);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_EQ(token.Check(), StopReason::kDeadline);
}

TEST(CancelTokenTest, FutureDeadlineReportsNone) {
  CancelToken token(60'000.0);  // a minute out: never expires in-test
  EXPECT_EQ(token.Check(), StopReason::kNone);
}

TEST(CancelTokenTest, ParentCancellationPropagatesThroughChain) {
  CancelToken parent;
  CancelToken child(60'000.0, &parent);
  EXPECT_EQ(child.Check(), StopReason::kNone);
  parent.RequestCancel();
  EXPECT_EQ(child.Check(), StopReason::kCancelled);
  // The child's own flag was never set.
  EXPECT_FALSE(child.cancel_requested());
}

TEST(CancelTokenTest, OwnCancelOutranksParentDeadline) {
  CancelToken parent(1e-6);
  CancelToken child(0.0, &parent);
  child.RequestCancel();
  // Precedence is evaluated top-down: the child's explicit cancel wins.
  EXPECT_EQ(child.Check(), StopReason::kCancelled);
}

TEST(TerminationInfoTest, MergeTakesHighestPrecedenceAndSumsWork) {
  TerminationInfo info;
  EXPECT_FALSE(info.terminated_early());
  info.MergeStrand(StopReason::kWorkLimit, 10);
  EXPECT_EQ(info.reason, StopReason::kWorkLimit);
  info.MergeStrand(StopReason::kDeadline, 5);
  EXPECT_EQ(info.reason, StopReason::kDeadline);
  // Lower precedence never downgrades the latched reason.
  info.MergeStrand(StopReason::kNone, 3);
  info.MergeStrand(StopReason::kWorkLimit, 2);
  EXPECT_EQ(info.reason, StopReason::kDeadline);
  EXPECT_EQ(info.work_units, 20u);
  TerminationInfo nested;
  nested.MergeStrand(StopReason::kCancelled, 1);
  info.Merge(nested);
  EXPECT_EQ(info.reason, StopReason::kCancelled);
  EXPECT_EQ(info.work_units, 21u);
}

TEST(StopReasonNameTest, WireNamesAreStable) {
  EXPECT_STREQ(StopReasonName(StopReason::kNone), "");
  EXPECT_STREQ(StopReasonName(StopReason::kWorkLimit), "work-limit");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(StopReasonName(StopReason::kCancelled), "cancelled");
}

TEST(WorkGovernorTest, InertGovernorOnlyCounts) {
  WorkGovernor governor;
  EXPECT_FALSE(governor.active());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(governor.Tick(), StopReason::kNone);
  }
  EXPECT_EQ(governor.work_done(), 1000u);
  EXPECT_FALSE(governor.stopped());
}

TEST(WorkGovernorTest, BudgetIsExactAndLatched) {
  WorkGovernor governor(nullptr, 3);
  EXPECT_TRUE(governor.active());
  EXPECT_EQ(governor.Tick(), StopReason::kNone);
  EXPECT_EQ(governor.Tick(), StopReason::kNone);
  // The third unit consumes the budget exactly.
  EXPECT_EQ(governor.Tick(), StopReason::kWorkLimit);
  EXPECT_TRUE(governor.stopped());
  // A stopped governor keeps counting (the drain path's work stays
  // truthful) but the reason stays latched.
  EXPECT_EQ(governor.Tick(), StopReason::kWorkLimit);
  EXPECT_EQ(governor.work_done(), 4u);
}

TEST(WorkGovernorTest, CancelledTokenStopsNextTick) {
  CancelToken token;
  WorkGovernor governor(&token, 0);
  EXPECT_EQ(governor.Tick(), StopReason::kNone);
  token.RequestCancel();
  EXPECT_EQ(governor.Tick(), StopReason::kCancelled);
  EXPECT_EQ(governor.reason(), StopReason::kCancelled);
}

TEST(WorkGovernorTest, DeadlineIsProbedWithinOnePeriod) {
  CancelToken token(1e-6);
  WorkGovernor governor(&token, 0);
  // The clock is rate-limited to one probe per kDeadlineProbePeriod
  // ticks, so the stop lands within the first period.
  StopReason reason = StopReason::kNone;
  for (std::uint64_t i = 0; i < WorkGovernor::kDeadlineProbePeriod + 1; ++i) {
    reason = governor.Tick();
    if (reason != StopReason::kNone) break;
  }
  EXPECT_EQ(reason, StopReason::kDeadline);
}

// --------------------------------------------------------------- API seam

TEST(DeadlineValidationTest, BadDeadlinesAreInvalidArgument) {
  api::SolveRequest request;
  request.solver = "greedy-quality";
  request.budget = 5.0;
  request.deadline_ms = -1.0;
  auto status = request.Validate();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("deadline_ms"), std::string::npos);
  request.deadline_ms = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(request.Validate().ok());
  request.deadline_ms = 0.0;
  EXPECT_TRUE(request.Validate().ok());
}

TEST(ReportJsonTest, LimitFreeReportsOmitTerminationFields) {
  auto context = api::PoolPlanContext::Plan(Figure1Workers()).value();
  api::SolveRequest request;
  request.solver = "greedy-quality";
  request.budget = 10.0;
  auto report = context.Solve(request);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report.value().limits_active);
  const std::string json = report.value().ToJson();
  // The historical byte layout: no termination keys without limits.
  EXPECT_EQ(json.find("terminated_early"), std::string::npos) << json;
  EXPECT_EQ(json.find("work_units"), std::string::npos) << json;
}

TEST(ReportJsonTest, LimitedReportsCarryTerminationFields) {
  auto context = api::PoolPlanContext::Plan(Figure1Workers()).value();
  api::SolveRequest request;
  request.solver = "greedy-quality";
  request.budget = 10.0;
  request.max_work_units = 1;
  auto report = context.Solve(request);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().limits_active);
  const std::string json = report.value().ToJson();
  EXPECT_NE(json.find("\"terminated_early\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"termination_reason\":\"work-limit\""),
            std::string::npos)
      << json;
}

TEST(CancelledSolveTest, PreCancelledTokenStillReturnsAValidReport) {
  auto context = api::PoolPlanContext::Plan(Figure1Workers()).value();
  CancelToken token;
  token.RequestCancel();
  api::SolveRequest request;
  request.solver = "annealing";
  request.budget = 20.0;
  request.cancel_token = &token;
  auto report = context.Solve(request);
  ASSERT_TRUE(report.ok()) << report.status();
  // Anytime contract: a cancelled solve succeeds with its best-so-far
  // jury (here the baseline) and says why it stopped.
  EXPECT_TRUE(report.value().terminated_early);
  EXPECT_EQ(report.value().termination_reason, "cancelled");
  EXPECT_LE(report.value().solution.cost, request.budget + 1e-9);
}

TEST(CancelledSolveTest, ExpiredDeadlineReportsDeadline) {
  auto context = api::PoolPlanContext::Plan(Figure1Workers()).value();
  api::SolveRequest request;
  request.solver = "annealing";
  request.budget = 20.0;
  request.deadline_ms = 1e-6;  // already past when the solve starts
  auto report = context.Solve(request);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report.value().terminated_early);
  EXPECT_EQ(report.value().termination_reason, "deadline");
}

TEST(RequestJsonLimitsTest, LimitFieldsRoundTripAndStayOffByDefault) {
  api::SolveRequest request;
  request.solver = "optjs";
  request.budget = 12.0;
  // Default request: the new keys must not appear (golden traces).
  EXPECT_EQ(request.ToJsonValue().Dump().find("deadline_ms"),
            std::string::npos);
  request.deadline_ms = 250.0;
  request.max_work_units = 77;
  const std::string json = request.ToJsonValue().Dump();
  EXPECT_NE(json.find("\"deadline_ms\":250"), std::string::npos) << json;
  auto parsed = api::SolveRequest::FromJsonText(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().deadline_ms, 250.0);
  EXPECT_EQ(parsed.value().max_work_units, 77u);
}

TEST(BudgetTableLimitsTest, WorkCapTruncatesToADeterministicPrefix) {
  const std::vector<Worker> pool = Figure1Workers();
  const std::vector<double> budgets = {5, 10, 15, 20, 25, 30};

  // Reference: the same options over only the first three budgets. The
  // caller's rng forks row seeds in order, so the capped 6-budget table
  // must reproduce this exactly (rows inherit the inner per-strand work
  // budget either way).
  OptjsOptions capped;
  capped.max_work_units = 3;  // one row = one work unit at table level
  Rng rng_ref(42);
  auto reference = BuildBudgetQualityTable(
      pool, {budgets[0], budgets[1], budgets[2]}, 0.5, &rng_ref, capped);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_EQ(reference.value().size(), 3u);

  TerminationInfo termination;
  capped.termination = &termination;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    capped.num_threads = threads;
    Rng rng(42);
    auto limited = BuildBudgetQualityTable(pool, budgets, 0.5, &rng, capped);
    ASSERT_TRUE(limited.ok()) << limited.status();
    ASSERT_EQ(limited.value().size(), 3u) << threads << " threads";
    EXPECT_EQ(termination.reason, StopReason::kWorkLimit);
    EXPECT_EQ(termination.work_units, 3u);
    // The cap is applied up-front, so the capped table is the same
    // prefix — same row seeds, same juries — at any thread count.
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(limited.value()[i].selected, reference.value()[i].selected);
      EXPECT_EQ(limited.value()[i].jq, reference.value()[i].jq);
    }
  }
}

TEST(BudgetTableLimitsTest, CancelledTableReturnsACompletedPrefix) {
  const std::vector<Worker> pool = Figure1Workers();
  const std::vector<double> budgets = {5, 10, 15, 20};
  CancelToken token;
  token.RequestCancel();
  OptjsOptions options;
  options.cancel_token = &token;
  TerminationInfo termination;
  options.termination = &termination;
  Rng rng(7);
  auto rows = BuildBudgetQualityTable(pool, budgets, 0.5, &rng, options);
  ASSERT_TRUE(rows.ok()) << rows.status();
  // Every row start polls the token; a pre-cancelled table is empty.
  EXPECT_TRUE(rows.value().empty());
  EXPECT_EQ(termination.reason, StopReason::kCancelled);
}

TEST(MinimalBudgetLimitsTest, WorkCapKeepsBestProbeSoFar) {
  const std::vector<Worker> pool = Figure1Workers();
  OptjsOptions unlimited;
  Rng rng_full(11);
  auto full = MinimalBudgetForQuality(pool, 0.85, 0.5, &rng_full, unlimited,
                                      0.25);
  ASSERT_TRUE(full.ok()) << full.status();

  OptjsOptions capped;
  capped.max_work_units = 2;  // one bisection probe = one unit
  TerminationInfo termination;
  capped.termination = &termination;
  Rng rng(11);
  auto limited = MinimalBudgetForQuality(pool, 0.85, 0.5, &rng, capped, 0.25);
  ASSERT_TRUE(limited.ok()) << limited.status();
  EXPECT_EQ(termination.reason, StopReason::kWorkLimit);
  // The early stop keeps a valid (if looser) budget: still hits the
  // quality target, never beats the fully-bisected answer.
  EXPECT_GE(limited.value().jq, 0.85);
  EXPECT_GE(limited.value().budget, full.value().budget - 1e-9);
}

}  // namespace
}  // namespace jury
