// Randomized cross-stack invariant checks ("fuzz-lite"): hundreds of random
// model configurations pushed through the whole pipeline, asserting only
// properties that must hold universally. Seeds are fixed, so failures are
// reproducible.

#include <cmath>

#include "gtest/gtest.h"
#include "core/annealing.h"
#include "core/branch_bound.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/mvjs.h"
#include "core/objective.h"
#include "core/optjs.h"
#include "jq/bucket.h"
#include "jq/closed_form.h"
#include "jq/exact.h"
#include "strategy/registry.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::RandomJury;
using jury::testing::RandomPool;

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, JqPipelineInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  for (int round = 0; round < 40; ++round) {
    const int n = 1 + static_cast<int>(rng.UniformInt(10));
    // Adversarial quality mix: extremes, coin flips, and regular values.
    std::vector<double> qs;
    for (int i = 0; i < n; ++i) {
      switch (rng.UniformInt(4)) {
        case 0: qs.push_back(rng.Uniform(0.0, 1.0)); break;
        case 1: qs.push_back(0.5); break;
        case 2: qs.push_back(rng.Uniform(0.95, 1.0)); break;
        default: qs.push_back(rng.Uniform(0.45, 0.55)); break;
      }
    }
    const Jury jury = Jury::FromQualities(qs);
    const double alpha = rng.Uniform();

    // Exact JQ for every strategy is a probability, and BV dominates.
    const double bv = ExactJqBv(jury, alpha).value();
    EXPECT_GE(bv, std::max(alpha, 1.0 - alpha) - 1e-9);
    EXPECT_LE(bv, 1.0 + 1e-12);
    for (const auto& s : MakeAllStrategies()) {
      const double jq = ExactJq(jury, *s, alpha).value();
      EXPECT_GE(jq, -1e-12) << s->name();
      EXPECT_LE(jq, bv + 1e-12) << s->name();
    }

    // Bucket estimate: underestimates within its own bound; backends and
    // pruning agree.
    BucketJqOptions options;
    options.num_buckets = 1 + static_cast<int>(rng.UniformInt(300));
    options.high_quality_cutoff = 1.0;  // exercise extreme qualities too
    BucketJqStats stats;
    const double approx = EstimateJq(jury, alpha, options, &stats).value();
    EXPECT_LE(approx, bv + 1e-9);
    if (!stats.high_quality_shortcut) {
      EXPECT_LE(bv - approx, stats.error_bound + 1e-9);
    }
    BucketJqOptions sparse = options;
    sparse.backend = BucketBackend::kSparse;
    sparse.enable_pruning = !options.enable_pruning;
    EXPECT_NEAR(approx, EstimateJq(jury, alpha, sparse).value(), 1e-9);
  }
}

TEST_P(FuzzTest, SolverInvariants) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503u + 13u);
  for (int round = 0; round < 6; ++round) {
    const int n = 2 + static_cast<int>(rng.UniformInt(9));
    JspInstance instance;
    instance.candidates = RandomPool(&rng, n, 0.0, 1.0, 0.0, 0.5);
    instance.budget = rng.Uniform(0.0, 1.5);
    instance.alpha = rng.Uniform();

    const ExactBvObjective objective;
    const auto exhaustive = SolveExhaustive(instance, objective).value();
    const auto bb = SolveBranchAndBound(instance, objective).value();
    EXPECT_NEAR(bb.jq, exhaustive.jq, 1e-9);

    Rng sa_rng = rng.Fork();
    const auto sa = SolveAnnealing(instance, objective, &sa_rng).value();
    EXPECT_LE(sa.cost, instance.budget + 1e-12);
    EXPECT_LE(sa.jq, exhaustive.jq + 1e-9);

    for (const auto& greedy :
         {SolveGreedyByQuality(instance, objective).value(),
          SolveGreedyByValuePerCost(instance, objective).value(),
          SolveOddTopK(instance, objective).value()}) {
      EXPECT_LE(greedy.cost, instance.budget + 1e-12);
      EXPECT_LE(greedy.jq, exhaustive.jq + 1e-9);
    }
  }
}

TEST_P(FuzzTest, SystemsNeverViolateBudgetsOrDominance) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7577u + 101u);
  for (int round = 0; round < 4; ++round) {
    JspInstance instance;
    instance.candidates = RandomPool(&rng, 14, 0.3, 0.99, 0.02, 0.4);
    instance.budget = rng.Uniform(0.1, 1.0);
    instance.alpha = 0.5;
    Rng r1 = rng.Fork();
    Rng r2 = rng.Fork();
    OptjsOptions options;
    options.bucket.num_buckets = 400;
    const auto optjs = SolveOptjs(instance, &r1, options).value();
    const auto mvjs = SolveMvjs(instance, &r2).value();
    EXPECT_LE(optjs.cost, instance.budget + 1e-12);
    EXPECT_LE(mvjs.cost, instance.budget + 1e-12);
    // Corollary 1 at system level (exhaustive path is exact for N <= 12;
    // N = 14 uses SA + greedy, so allow a small search-noise slack).
    const double optjs_true =
        ExactJqBv(optjs.ToJury(instance), instance.alpha).value();
    const double mvjs_true =
        MajorityJq(mvjs.ToJury(instance), instance.alpha).value();
    EXPECT_GE(optjs_true, mvjs_true - 0.03);
  }
}

TEST_P(FuzzTest, CountingEngineMatchesEnumerationOnRandomRules) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9901u + 7u);
  for (int round = 0; round < 10; ++round) {
    const int n = 1 + static_cast<int>(rng.UniformInt(8));
    const Jury jury = RandomJury(&rng, n, 0.2, 0.99);
    const double alpha = rng.Uniform();
    std::vector<double> h(static_cast<std::size_t>(n) + 1);
    for (auto& x : h) x = rng.Uniform();

    class RuleStrategy final : public VotingStrategy {
     public:
      explicit RuleStrategy(const std::vector<double>& h) : h_(h) {}
      std::string name() const override { return "RULE"; }
      StrategyKind kind() const override {
        return StrategyKind::kRandomized;
      }
      double ProbZero(const Jury&, const Votes& votes,
                      double) const override {
        return h_[static_cast<std::size_t>(CountZeros(votes))];
      }

     private:
      const std::vector<double>& h_;
    };
    const RuleStrategy rule(h);
    const double exact = ExactJq(jury, rule, alpha).value();
    const double engine =
        CountingStrategyJq(jury, alpha, [&](int z) {
          return h[static_cast<std::size_t>(z)];
        }).value();
    EXPECT_NEAR(engine, exact, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace jury
