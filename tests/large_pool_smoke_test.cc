// Large-pool smoke: a 100k-worker pool must plan, snapshot-round-trip,
// and solve with frontier pre-selection bit-identical to the full scan —
// the CI-scale version of the million-worker serving path (bench_pool
// covers the 1e6 numbers; this keeps the path exercised on every test
// run).

#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "api/solve.h"
#include "core/frontier.h"
#include "core/greedy.h"
#include "core/objective.h"
#include "model/pool_snapshot.h"
#include "model/sharded_pool.h"
#include "model/worker_pool_view.h"
#include "util/rng.h"

namespace jury {
namespace {

constexpr std::size_t kPoolSize = 100'000;

std::vector<Worker> LargePool() {
  Rng rng(20150323);
  std::vector<Worker> workers;
  workers.reserve(kPoolSize);
  for (std::size_t i = 0; i < kPoolSize; ++i) {
    workers.emplace_back("w" + std::to_string(i), rng.Uniform(0.0, 1.0),
                         rng.Uniform(0.01, 0.1));
  }
  return workers;
}

TEST(LargePoolSmokeTest, SnapshotRoundTripAndFrontierSolve) {
  const std::vector<Worker> workers = LargePool();
  const WorkerPoolView view(workers);

  // Snapshot round trip at scale: write, map back, adopt into a plan.
  const char* dir = std::getenv("TMPDIR");
  const std::string path =
      std::string(dir != nullptr && dir[0] != '\0' ? dir : "/tmp") +
      "/juryopt_large_pool_smoke.snap";
  ASSERT_TRUE(PoolSnapshot::Write(path, workers, view).ok());
  auto loaded = PoolSnapshot::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ASSERT_EQ(loaded.value().size(), kPoolSize);
  for (const std::size_t i :
       {std::size_t{0}, std::size_t{4999}, kPoolSize - 1}) {
    EXPECT_EQ(loaded.value().id(i), workers[i].id);
    EXPECT_EQ(loaded.value().quality()[i], workers[i].quality);
    EXPECT_EQ(loaded.value().cost()[i], workers[i].cost);
  }

  auto plan = api::PoolPlanContext::PlanFromSnapshot(std::move(loaded).value());
  std::remove(path.c_str());
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  EXPECT_EQ(plan.value().num_candidates(), kPoolSize);
  EXPECT_STREQ(plan.value().pool_source(), "snapshot");

  // The plan's lazily built shard index covers the whole pool.
  const ShardedWorkerPool* sharded = plan.value().sharded_pool();
  ASSERT_NE(sharded, nullptr);
  EXPECT_EQ(sharded->size(), kPoolSize);
  std::size_t covered = 0;
  for (std::size_t s = 0; s < sharded->num_shards(); ++s) {
    covered += sharded->shard(s).population();
  }
  EXPECT_EQ(covered, kPoolSize);

  // Frontier solve vs full scan on the core seam, budget sized for a
  // ~15-member jury so the full scan does real per-round work.
  JspInstance instance;
  instance.candidates = workers;
  instance.budget = 0.75;
  instance.alpha = 0.5;
  const BucketBvObjective objective{BucketJqOptions{}};

  GreedyOptions full_options;
  const auto full =
      SolveGreedyMarginalGain(instance, view, objective, full_options);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full.value().selected.empty());

  GreedyOptions frontier_options;
  frontier_options.frontier_k = FrontierOptions{}.k;
  frontier_options.sharded_pool = sharded;
  FrontierScanStats stats;
  frontier_options.frontier_stats = &stats;
  JspInstance snapshot_instance;
  // Materializes the snapshot's AoS records and binds them to the view
  // (solvers commit winners through `view.worker(i)`).
  snapshot_instance.candidates = plan.value().candidates();
  snapshot_instance.budget = instance.budget;
  snapshot_instance.alpha = instance.alpha;
  const auto frontier = SolveGreedyMarginalGain(
      snapshot_instance, plan.value().view(), objective, frontier_options);
  ASSERT_TRUE(frontier.ok());
  EXPECT_EQ(frontier.value().selected, full.value().selected);
  EXPECT_EQ(frontier.value().jq, full.value().jq);
  EXPECT_EQ(frontier.value().cost, full.value().cost);
  EXPECT_GT(stats.candidates_scanned, 0u);
  // At this scale the slates must prune the vast majority of candidates.
  const double scanned_per_scan =
      static_cast<double>(stats.candidates_scanned) /
      static_cast<double>(stats.scans);
  EXPECT_LT(scanned_per_scan, static_cast<double>(kPoolSize) / 10.0);
}

}  // namespace
}  // namespace jury
