#include <cmath>
#include <tuple>

#include "gtest/gtest.h"
#include "jq/closed_form.h"
#include "jq/exact.h"
#include "jq/exact_map.h"
#include "test_util.h"
#include "util/math.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::Figure2Jury;
using jury::testing::RandomJury;

TEST(ExactMapTest, MatchesPaperExample) {
  EXPECT_NEAR(ExactJqBvMap(Figure2Jury(), 0.5).value(), 0.9, 1e-12);
}

class ExactMapAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(ExactMapAgreementTest, MatchesBruteForceEnumeration) {
  const auto [n, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 5309 +
          static_cast<std::uint64_t>(n));
  const Jury jury = RandomJury(&rng, n, 0.3, 0.99);
  EXPECT_NEAR(ExactJqBvMap(jury, alpha).value(),
              ExactJqBv(jury, alpha).value(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactMapAgreementTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 7, 10, 13),
                       ::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(1, 2)));

TEST(ExactMapTest, DuplicatedQualitiesStayPolynomial) {
  // 201 identical workers: 2^201 votings but only 202 distinct keys.
  const Jury jury = Jury::FromQualities(std::vector<double>(201, 0.6));
  ExactMapStats stats;
  const double jq = ExactJqBvMap(jury, 0.5, {}, &stats).value();
  EXPECT_LE(stats.max_keys_used, 202u);
  // Identical odd jury under BV == MV; the polynomial DP cross-checks it.
  EXPECT_NEAR(jq, MajorityJq(jury, 0.5).value(), 1e-9);
}

TEST(ExactMapTest, TwoQualityLevelsStayQuadratic) {
  std::vector<double> qs;
  for (int i = 0; i < 30; ++i) qs.push_back(i % 2 == 0 ? 0.7 : 0.85);
  ExactMapStats stats;
  ASSERT_TRUE(ExactJqBvMap(Jury::FromQualities(qs), 0.5, {}, &stats).ok());
  EXPECT_LE(stats.max_keys_used, 16u * 16u * 4u);  // O(n^2)-ish keys
}

TEST(ExactMapTest, KeyBudgetIsEnforced) {
  Rng rng(5);
  const Jury jury = RandomJury(&rng, 30, 0.5, 0.99);  // all-distinct: 2^30
  ExactMapOptions options;
  options.max_keys = 1000;
  EXPECT_EQ(ExactJqBvMap(jury, 0.5, options).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(ExactMapTest, TieMassIsExposedForSymmetricJuries) {
  // Two equal workers: votes (0,1)/(1,0) land exactly on R = 0.
  const Jury jury = Jury::FromQualities({0.8, 0.8});
  ExactMapStats stats;
  const double jq = ExactJqBvMap(jury, 0.5, {}, &stats).value();
  EXPECT_NEAR(stats.tie_mass, 2.0 * 0.8 * 0.2, 1e-9);
  EXPECT_NEAR(jq, 0.8, 1e-12);
}

TEST(ExactMapTest, NpHardnessReductionStructure) {
  // The Theorem-2 reduction maps a PARTITION instance {a_i} to workers
  // with phi(q_i) proportional to a_i: probability mass sits on the R = 0
  // tie iff the numbers admit a perfect partition. Run both sides.
  auto jury_for = [](const std::vector<double>& values) {
    std::vector<double> qs;
    qs.reserve(values.size());
    for (double a : values) qs.push_back(Sigmoid(0.05 * a));  // phi = .05a
    return Jury::FromQualities(qs);
  };
  // {1, 2, 3} partitions as {1,2} vs {3}.
  ExactMapStats yes_stats;
  ASSERT_TRUE(
      ExactJqBvMap(jury_for({1, 2, 3}), 0.5, {}, &yes_stats).ok());
  EXPECT_GT(yes_stats.tie_mass, 0.0);
  // {2, 3, 4} has odd total: no partition, no tie mass.
  ExactMapStats no_stats;
  ASSERT_TRUE(ExactJqBvMap(jury_for({2, 3, 4}), 0.5, {}, &no_stats).ok());
  EXPECT_DOUBLE_EQ(no_stats.tie_mass, 0.0);
}

TEST(ExactMapTest, ValidatesInputs) {
  EXPECT_FALSE(ExactJqBvMap(Jury(), 0.5).ok());
  EXPECT_FALSE(ExactJqBvMap(Figure2Jury(), 1.5).ok());
  ExactMapOptions bad;
  bad.key_epsilon = -1.0;
  EXPECT_FALSE(ExactJqBvMap(Figure2Jury(), 0.5, bad).ok());
}

}  // namespace
}  // namespace jury
