#ifndef JURYOPT_TESTS_TEST_UTIL_H_
#define JURYOPT_TESTS_TEST_UTIL_H_

#include <vector>

#include "model/jury.h"
#include "model/worker.h"
#include "util/rng.h"

namespace jury::testing {

/// Random jury of size n with qualities uniform in [lo, hi], zero costs.
inline Jury RandomJury(Rng* rng, int n, double lo = 0.55, double hi = 0.95) {
  std::vector<double> qs;
  qs.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) qs.push_back(rng->Uniform(lo, hi));
  return Jury::FromQualities(qs);
}

/// Random candidate pool with qualities in [qlo, qhi] and costs in
/// [clo, chi].
inline std::vector<Worker> RandomPool(Rng* rng, int n, double qlo, double qhi,
                                      double clo, double chi) {
  std::vector<Worker> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pool.emplace_back("w" + std::to_string(i), rng->Uniform(qlo, qhi),
                      rng->Uniform(clo, chi));
  }
  return pool;
}

/// The seven named workers of the paper's Fig. 1 (quality, cost).
inline std::vector<Worker> Figure1Workers() {
  return {
      {"A", 0.77, 9.0}, {"B", 0.70, 5.0}, {"C", 0.80, 6.0},
      {"D", 0.65, 7.0}, {"E", 0.60, 5.0}, {"F", 0.60, 2.0},
      {"G", 0.75, 3.0},
  };
}

/// The three-worker jury of the paper's Fig. 2 / Examples 2-3
/// (qualities 0.9, 0.6, 0.6).
inline Jury Figure2Jury() { return Jury::FromQualities({0.9, 0.6, 0.6}); }

}  // namespace jury::testing

#endif  // JURYOPT_TESTS_TEST_UTIL_H_
