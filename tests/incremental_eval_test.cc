// Property tests for the IncrementalJqEvaluator sessions: every staged
// score must agree with a from-scratch `Evaluate` of the materialized jury
// within 1e-12, across all three backends, arbitrary add/remove/swap
// sequences, rollbacks, and the bucket estimator's special-case modes.

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "core/jsp.h"
#include "core/objective.h"
#include "model/worker_pool_view.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

constexpr double kTol = 1e-12;

Jury MaterializeMembers(const IncrementalJqEvaluator& session) {
  Jury jury;
  for (const Worker& w : session.members()) jury.Add(w);
  return jury;
}

Worker RandomWorker(Rng* rng, int serial, double qlo = 0.05,
                    double qhi = 0.95) {
  return Worker("w" + std::to_string(serial), rng->Uniform(qlo, qhi), 0.0);
}

/// Shared churn harness: random add/remove/swap moves, each committed or
/// rolled back at random; after every step the staged score and the
/// committed score are checked against the stateless evaluator.
void ChurnAgainstEvaluate(const JqObjective& objective, double alpha,
                          std::uint64_t seed, int steps, double qlo,
                          double qhi, std::size_t max_size) {
  Rng rng(seed);
  auto session = objective.StartSession(alpha);
  std::vector<Worker> shadow;  // mirrors the committed member list
  int serial = 0;

  ASSERT_NEAR(session->current_jq(), EmptyJuryJq(alpha), kTol);

  for (int step = 0; step < steps; ++step) {
    const std::uint64_t move =
        shadow.empty() ? 0 : (shadow.size() >= max_size
                                  ? 1 + rng.UniformInt(2)
                                  : rng.UniformInt(3));
    std::vector<Worker> hypothetical = shadow;
    double score = 0.0;
    if (move == 0) {  // add
      const Worker w = RandomWorker(&rng, serial++, qlo, qhi);
      score = session->ScoreAdd(w);
      hypothetical.push_back(w);
    } else if (move == 1) {  // remove
      const std::size_t idx =
          rng.UniformInt(static_cast<std::uint64_t>(shadow.size()));
      score = session->ScoreRemove(idx);
      hypothetical.erase(hypothetical.begin() +
                         static_cast<std::ptrdiff_t>(idx));
    } else {  // swap
      const std::size_t idx =
          rng.UniformInt(static_cast<std::uint64_t>(shadow.size()));
      const Worker w = RandomWorker(&rng, serial++, qlo, qhi);
      score = session->ScoreSwap(idx, w);
      hypothetical[idx] = w;
    }

    Jury jury(hypothetical);
    ASSERT_NEAR(score, objective.Evaluate(jury, alpha), kTol)
        << objective.name() << " seed=" << seed << " step=" << step
        << " move=" << move << " size=" << hypothetical.size();

    if (rng.Bernoulli(0.3)) {
      session->Rollback();
      // The committed state must be untouched by the discarded move.
      ASSERT_NEAR(session->current_jq(),
                  objective.Evaluate(Jury(shadow), alpha), kTol);
    } else {
      session->Commit();
      shadow = std::move(hypothetical);
      ASSERT_EQ(session->size(), shadow.size());
      ASSERT_NEAR(session->current_jq(),
                  objective.Evaluate(MaterializeMembers(*session), alpha),
                  kTol)
          << objective.name() << " seed=" << seed << " step=" << step;
    }
  }
}

TEST(IncrementalEvalTest, BucketBvChurnMatchesEvaluate) {
  const BucketBvObjective objective;
  for (double alpha : {0.5, 0.3, 0.8}) {
    ChurnAgainstEvaluate(objective, alpha, 101, 200, 0.05, 0.95, 40);
  }
}

TEST(IncrementalEvalTest, BucketBvHighResolutionGrid) {
  BucketJqOptions options;
  options.num_buckets = 400;
  const BucketBvObjective objective(options);
  ChurnAgainstEvaluate(objective, 0.5, 103, 120, 0.05, 0.95, 25);
}

TEST(IncrementalEvalTest, BucketBvShortcutAndDegenerateModes) {
  // Qualities straddling the 0.99 high-quality cutoff force the session in
  // and out of the §4.4 shortcut; qualities at exactly 0.5 exercise the
  // all-phi-zero mode; qualities below 0.5 the flip normalization.
  const BucketBvObjective objective;
  ChurnAgainstEvaluate(objective, 0.5, 107, 150, 0.3, 1.0, 20);
  ChurnAgainstEvaluate(objective, 0.7, 109, 150, 0.3, 1.0, 20);

  // Deterministic walk through the modes.
  auto session = objective.StartSession(0.5);
  const Worker half("half", 0.5, 0.0);
  const Worker sharp("sharp", 0.999, 0.0);
  const Worker solid("solid", 0.8, 0.0);
  session->ScoreAdd(half);
  session->Commit();
  EXPECT_NEAR(session->current_jq(), 0.5, kTol);  // all-0.5 mode
  session->ScoreAdd(sharp);
  session->Commit();
  EXPECT_NEAR(session->current_jq(), 0.999, kTol);  // shortcut mode
  session->ScoreAdd(solid);
  session->Commit();
  EXPECT_NEAR(session->current_jq(), 0.999, kTol);  // still shortcut
  session->ScoreRemove(1);  // drop "sharp": back to the regular DP
  session->Commit();
  EXPECT_NEAR(session->current_jq(),
              objective.Evaluate(MaterializeMembers(*session), 0.5), kTol);
}

TEST(IncrementalEvalTest, ExactBvChurnMatchesEvaluate) {
  const ExactBvObjective objective;
  for (double alpha : {0.5, 0.35}) {
    ChurnAgainstEvaluate(objective, alpha, 211, 150, 0.05, 0.95, 10);
  }
}

TEST(IncrementalEvalTest, ExactBvBeyondCacheCapFallsBackCorrectly) {
  const ExactBvObjective objective;
  Rng rng(223);
  auto session = objective.StartSession(0.5);
  // Grow past the 2^n cache cap (20 members) and make sure scores stay
  // correct through the enumeration fallback and the rebuild on shrink.
  for (std::size_t i = 0; i < 22; ++i) {
    session->ScoreAdd(RandomWorker(&rng, static_cast<int>(i), 0.55, 0.9));
    session->Commit();
  }
  EXPECT_NEAR(session->current_jq(),
              objective.Evaluate(MaterializeMembers(*session), 0.5), kTol);
  // Shrink back under the cap: the cache must rebuild transparently.
  session->ScoreRemove(0);
  session->Commit();
  session->ScoreRemove(0);
  session->Commit();
  EXPECT_NEAR(session->current_jq(),
              objective.Evaluate(MaterializeMembers(*session), 0.5), kTol);
}

TEST(IncrementalEvalTest, MajorityChurnMatchesEvaluate) {
  const MajorityObjective objective;
  for (double alpha : {0.5, 0.2, 0.9}) {
    ChurnAgainstEvaluate(objective, alpha, 307, 250, 0.05, 0.95, 60);
  }
}

TEST(IncrementalEvalTest, MajorityHandlesDegenerateQualities) {
  const MajorityObjective objective;
  ChurnAgainstEvaluate(objective, 0.5, 311, 120, 0.0, 1.0, 30);
}

TEST(IncrementalEvalTest, FullRecomputeSessionIsEvaluateVerbatim) {
  const BucketBvObjective bucket;
  const MajorityObjective majority;
  for (const JqObjective* objective :
       std::vector<const JqObjective*>{&bucket, &majority}) {
    Rng rng(401);
    auto session = objective->StartSession(0.5, /*incremental=*/false);
    std::vector<Worker> shadow;
    for (int step = 0; step < 40; ++step) {
      const Worker w = RandomWorker(&rng, step, 0.4, 0.9);
      const double score = session->ScoreAdd(w);
      shadow.push_back(w);
      // Bit-equal, not just near: the fallback session *is* Evaluate.
      ASSERT_EQ(score, objective->Evaluate(Jury(shadow), 0.5));
      session->Commit();
    }
  }
}

TEST(IncrementalEvalTest, RestagingReplacesThePendingMove) {
  const MajorityObjective objective;
  auto session = objective.StartSession(0.5);
  const Worker a("a", 0.9, 0.0);
  const Worker b("b", 0.6, 0.0);
  session->ScoreAdd(a);
  session->ScoreAdd(b);  // replaces the staged move
  session->Commit();
  ASSERT_EQ(session->size(), 1u);
  EXPECT_EQ(session->members()[0].id, "b");
  EXPECT_NEAR(session->current_jq(), 0.6, kTol);
}

TEST(IncrementalEvalTest, CountersSplitFullAndIncremental) {
  const MajorityObjective objective;
  objective.ResetEvaluationCounters();
  auto session = objective.StartSession(0.5);
  const Worker w("w", 0.7, 0.0);
  session->ScoreAdd(w);
  session->Commit();
  session->ScoreAdd(w);
  session->Rollback();
  EXPECT_EQ(objective.evaluation_counters().incremental, 2u);
  EXPECT_EQ(objective.evaluation_counters().full, 0u);

  Jury jury;
  jury.Add(w);
  objective.Evaluate(jury, 0.5);
  EXPECT_EQ(objective.evaluation_counters().full, 1u);
  EXPECT_EQ(objective.evaluations(), 3u);  // legacy total

  auto reference = objective.StartSession(0.5, /*incremental=*/false);
  reference->ScoreAdd(w);
  EXPECT_EQ(objective.evaluation_counters().full, 2u);
  EXPECT_EQ(objective.evaluation_counters().incremental, 2u);
}

/// Shared harness for the batched-scan contract: against a committed jury
/// of each size in `committed_sizes`, `ScoreAddBatch` must reproduce the
/// scalar `ScoreAdd` score of every candidate bit for bit, and the scores
/// must not depend on how the candidate list is split into batches (the
/// invariant that lets the parallel greedy scan shard with any grain).
void BatchMatchesScalar(const JqObjective& objective, double alpha,
                        bool incremental, std::uint64_t seed) {
  Rng rng(seed);
  auto session = objective.StartSession(alpha, incremental);
  std::vector<Worker> candidates;
  for (int j = 0; j < 24; ++j) {
    candidates.push_back(RandomWorker(&rng, j));
  }
  // Stress the bucket backend's special cases: a §4.4-shortcut candidate,
  // a grid-moving near-max candidate, and exact coin flippers.
  candidates.push_back(Worker("hq", 0.995, 0.0));
  candidates.push_back(Worker("gridmove", 0.949, 0.0));
  candidates.push_back(Worker("coin", 0.5, 0.0));
  candidates.push_back(Worker("flip", 0.2, 0.0));
  std::vector<const Worker*> ptrs;
  for (const Worker& w : candidates) ptrs.push_back(&w);

  for (int committed = 0; committed < 4; ++committed) {
    std::vector<double> scalar(ptrs.size());
    for (std::size_t j = 0; j < ptrs.size(); ++j) {
      scalar[j] = session->ScoreAdd(*ptrs[j]);
      session->Rollback();
    }
    std::vector<double> batched(ptrs.size(), -1.0);
    session->ScoreAddBatch(ptrs.data(), ptrs.size(), batched.data());
    for (std::size_t j = 0; j < ptrs.size(); ++j) {
      EXPECT_EQ(batched[j], scalar[j])
          << objective.name() << " committed=" << committed << " j=" << j
          << " (" << ptrs[j]->id << ")";
    }
    // Batch-composition independence: two half-batches, same scores.
    const std::size_t half = ptrs.size() / 2;
    std::vector<double> split(ptrs.size(), -1.0);
    session->ScoreAddBatch(ptrs.data(), half, split.data());
    session->ScoreAddBatch(ptrs.data() + half, ptrs.size() - half,
                           split.data() + half);
    for (std::size_t j = 0; j < ptrs.size(); ++j) {
      EXPECT_EQ(split[j], batched[j])
          << objective.name() << " committed=" << committed << " j=" << j;
    }
    EXPECT_FALSE(session->has_staged_move());
    // Grow the committed jury through the batch-scored winner, as the
    // greedy solver does, and make sure the session stays coherent.
    const std::size_t winner = static_cast<std::size_t>(committed);
    session->CommitAdd(*ptrs[winner], batched[winner]);
    EXPECT_EQ(session->current_jq(), batched[winner]);
  }
}

TEST(IncrementalEvalTest, ScoreAddBatchMatchesScalarBucketBv) {
  BatchMatchesScalar(BucketBvObjective(), 0.5, true, 31001);
  BatchMatchesScalar(BucketBvObjective(), 0.7, true, 31003);
  BucketJqOptions no_shortcut;
  no_shortcut.high_quality_cutoff = 1.0;
  BatchMatchesScalar(BucketBvObjective(no_shortcut), 0.5, true, 31005);
}

TEST(IncrementalEvalTest, ScoreAddBatchMatchesScalarMajority) {
  BatchMatchesScalar(MajorityObjective(), 0.5, true, 31011);
  BatchMatchesScalar(MajorityObjective(), 0.65, true, 31013);
}

TEST(IncrementalEvalTest, ScoreAddBatchMatchesScalarExactBv) {
  BatchMatchesScalar(ExactBvObjective(), 0.5, true, 31021);
}

TEST(IncrementalEvalTest, ScoreAddBatchMatchesScalarFullRecompute) {
  BatchMatchesScalar(BucketBvObjective(), 0.5, /*incremental=*/false, 31031);
  BatchMatchesScalar(MajorityObjective(), 0.5, /*incremental=*/false, 31033);
}

/// Shared harness for the unified (view-index) move-scan contract: against
/// committed juries of several sizes, the index-based `ScoreAddBatch`,
/// `ScoreRemoveBatch`, and `ScoreSwapBatch` must reproduce the scalar
/// `Score*` score of every candidate bit for bit, independently of batch
/// composition — and spend exactly the evaluation-counter budget the
/// scalar scan spends (the relaxed atomic accumulation must not lose
/// counts; see JqObjective::evaluation_counters).
void UnifiedScanMatchesScalar(const JqObjective& objective, double alpha,
                              bool incremental, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Worker> pool;
  for (int j = 0; j < 20; ++j) pool.push_back(RandomWorker(&rng, j));
  // Bucket-backend special cases: §4.4 shortcut, grid mover, coin, flip.
  pool.push_back(Worker("hq", 0.995, 0.0));
  pool.push_back(Worker("gridmove", 0.949, 0.0));
  pool.push_back(Worker("coin", 0.5, 0.0));
  pool.push_back(Worker("flip", 0.2, 0.0));
  const WorkerPoolView view(pool);
  auto session = objective.StartSession(view, alpha, incremental);
  std::vector<std::size_t> ids(view.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;

  for (int committed = 0; committed < 5; ++committed) {
    const std::size_t size = session->size();
    // ---- adds (index-based) ----
    std::vector<double> scalar(ids.size());
    objective.ResetEvaluationCounters();
    for (std::size_t j = 0; j < ids.size(); ++j) {
      scalar[j] = session->ScoreAdd(view.worker(ids[j]));
      session->Rollback();
    }
    const EvaluationCounters scalar_adds = objective.evaluation_counters();
    objective.ResetEvaluationCounters();
    std::vector<double> batched(ids.size(), -1.0);
    session->ScoreAddBatch(ids.data(), ids.size(), batched.data());
    const EvaluationCounters batch_adds = objective.evaluation_counters();
    for (std::size_t j = 0; j < ids.size(); ++j) {
      EXPECT_EQ(batched[j], scalar[j])
          << objective.name() << " add committed=" << committed
          << " j=" << j << " (" << view.worker(ids[j]).id << ")";
    }
    EXPECT_EQ(batch_adds.total(), scalar_adds.total())
        << objective.name() << " add counters, committed=" << committed;
    // Batch-composition independence.
    const std::size_t half = ids.size() / 2;
    std::vector<double> split(ids.size(), -1.0);
    session->ScoreAddBatch(ids.data(), half, split.data());
    session->ScoreAddBatch(ids.data() + half, ids.size() - half,
                           split.data() + half);
    for (std::size_t j = 0; j < ids.size(); ++j) {
      EXPECT_EQ(split[j], batched[j]) << objective.name() << " add split";
    }
    // Index-based and Worker-pointer-based scans agree.
    std::vector<const Worker*> ptrs;
    for (std::size_t i : ids) ptrs.push_back(&view.worker(i));
    std::vector<double> by_ptr(ids.size(), -1.0);
    session->ScoreAddBatch(ptrs.data(), ptrs.size(), by_ptr.data());
    for (std::size_t j = 0; j < ids.size(); ++j) {
      EXPECT_EQ(by_ptr[j], batched[j]) << objective.name() << " ptr vs idx";
    }

    if (size > 0) {
      // ---- removes (member positions) ----
      std::vector<std::size_t> positions(size);
      for (std::size_t pos = 0; pos < size; ++pos) positions[pos] = pos;
      std::vector<double> rm_scalar(size);
      objective.ResetEvaluationCounters();
      for (std::size_t pos = 0; pos < size; ++pos) {
        rm_scalar[pos] = session->ScoreRemove(pos);
        session->Rollback();
      }
      const EvaluationCounters scalar_rm = objective.evaluation_counters();
      objective.ResetEvaluationCounters();
      std::vector<double> rm_batched(size, -1.0);
      session->ScoreRemoveBatch(positions.data(), size, rm_batched.data());
      const EvaluationCounters batch_rm = objective.evaluation_counters();
      for (std::size_t pos = 0; pos < size; ++pos) {
        EXPECT_EQ(rm_batched[pos], rm_scalar[pos])
            << objective.name() << " remove committed=" << committed
            << " pos=" << pos;
      }
      EXPECT_EQ(batch_rm.total(), scalar_rm.total())
          << objective.name() << " remove counters";

      // ---- swaps (one out position, batch of partners) ----
      for (const std::size_t out_pos :
           {std::size_t{0}, size / 2, size - 1}) {
        std::vector<double> sw_scalar(ids.size());
        objective.ResetEvaluationCounters();
        for (std::size_t j = 0; j < ids.size(); ++j) {
          sw_scalar[j] = session->ScoreSwap(out_pos, view.worker(ids[j]));
          session->Rollback();
        }
        const EvaluationCounters scalar_sw = objective.evaluation_counters();
        objective.ResetEvaluationCounters();
        std::vector<double> sw_batched(ids.size(), -1.0);
        session->ScoreSwapBatch(out_pos, ids.data(), ids.size(),
                                sw_batched.data());
        const EvaluationCounters batch_sw = objective.evaluation_counters();
        for (std::size_t j = 0; j < ids.size(); ++j) {
          EXPECT_EQ(sw_batched[j], sw_scalar[j])
              << objective.name() << " swap committed=" << committed
              << " out=" << out_pos << " j=" << j;
        }
        EXPECT_EQ(batch_sw.total(), scalar_sw.total())
            << objective.name() << " swap counters";
      }
    }
    EXPECT_FALSE(session->has_staged_move());
    // Grow through a batch-scored winner, as the solvers do.
    const std::size_t winner = static_cast<std::size_t>(committed);
    session->CommitAdd(view.worker(winner), batched[winner]);
    EXPECT_EQ(session->current_jq(), batched[winner]);
  }
}

TEST(IncrementalEvalTest, UnifiedScanMatchesScalarBucketBv) {
  UnifiedScanMatchesScalar(BucketBvObjective(), 0.5, true, 41001);
  UnifiedScanMatchesScalar(BucketBvObjective(), 0.7, true, 41003);
  BucketJqOptions no_shortcut;
  no_shortcut.high_quality_cutoff = 1.0;
  UnifiedScanMatchesScalar(BucketBvObjective(no_shortcut), 0.5, true, 41005);
}

TEST(IncrementalEvalTest, UnifiedScanMatchesScalarMajority) {
  UnifiedScanMatchesScalar(MajorityObjective(), 0.5, true, 41011);
  UnifiedScanMatchesScalar(MajorityObjective(), 0.65, true, 41013);
}

TEST(IncrementalEvalTest, UnifiedScanMatchesScalarExactBv) {
  // Exercises the base-class scalar-loop fallbacks of the unified API.
  UnifiedScanMatchesScalar(ExactBvObjective(), 0.5, true, 41021);
}

TEST(IncrementalEvalTest, UnifiedScanMatchesScalarFullRecompute) {
  UnifiedScanMatchesScalar(BucketBvObjective(), 0.5, /*incremental=*/false,
                           41031);
  UnifiedScanMatchesScalar(MajorityObjective(), 0.5, /*incremental=*/false,
                           41033);
}

TEST(IncrementalEvalTest, MemberQualityColumnTracksMembers) {
  const MajorityObjective objective;
  Rng rng(41041);
  std::vector<Worker> pool;
  for (int j = 0; j < 8; ++j) pool.push_back(RandomWorker(&rng, j));
  const WorkerPoolView view(pool);
  auto session = objective.StartSession(view, 0.5);
  for (std::size_t i = 0; i < 6; ++i) {
    session->ScoreAdd(view.worker(i));
    session->Commit();
  }
  session->ScoreSwap(2, view.worker(7));
  session->Commit();
  session->ScoreRemove(0);
  session->Commit();
  session->CommitAdd(view.worker(6), session->ScoreAdd(view.worker(6)));
  ASSERT_EQ(session->member_qualities().size(), session->members().size());
  for (std::size_t pos = 0; pos < session->size(); ++pos) {
    EXPECT_EQ(session->member_qualities()[pos],
              session->members()[pos].quality)
        << pos;
  }
}

TEST(IncrementalEvalTest, ScoreAddBatchOnClonesMatchesParent) {
  // The parallel greedy scan scores through per-shard clones; their batch
  // scores must be bit-identical to the parent session's.
  const BucketBvObjective objective;
  Rng rng(31041);
  auto session = objective.StartSession(0.5);
  for (int i = 0; i < 5; ++i) {
    session->ScoreAdd(RandomWorker(&rng, 100 + i));
    session->Commit();
  }
  std::vector<Worker> candidates;
  for (int j = 0; j < 16; ++j) candidates.push_back(RandomWorker(&rng, j));
  std::vector<const Worker*> ptrs;
  for (const Worker& w : candidates) ptrs.push_back(&w);
  std::vector<double> parent(ptrs.size());
  session->ScoreAddBatch(ptrs.data(), ptrs.size(), parent.data());
  auto clone = session->Clone();
  ASSERT_NE(clone, nullptr);
  std::vector<double> cloned(ptrs.size());
  clone->ScoreAddBatch(ptrs.data(), ptrs.size(), cloned.data());
  for (std::size_t j = 0; j < ptrs.size(); ++j) {
    EXPECT_EQ(cloned[j], parent[j]) << "j=" << j;
  }
}

}  // namespace
}  // namespace jury
