// Property tests for the IncrementalJqEvaluator sessions: every staged
// score must agree with a from-scratch `Evaluate` of the materialized jury
// within 1e-12, across all three backends, arbitrary add/remove/swap
// sequences, rollbacks, and the bucket estimator's special-case modes.

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "core/jsp.h"
#include "core/objective.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

constexpr double kTol = 1e-12;

Jury MaterializeMembers(const IncrementalJqEvaluator& session) {
  Jury jury;
  for (const Worker& w : session.members()) jury.Add(w);
  return jury;
}

Worker RandomWorker(Rng* rng, int serial, double qlo = 0.05,
                    double qhi = 0.95) {
  return Worker("w" + std::to_string(serial), rng->Uniform(qlo, qhi), 0.0);
}

/// Shared churn harness: random add/remove/swap moves, each committed or
/// rolled back at random; after every step the staged score and the
/// committed score are checked against the stateless evaluator.
void ChurnAgainstEvaluate(const JqObjective& objective, double alpha,
                          std::uint64_t seed, int steps, double qlo,
                          double qhi, std::size_t max_size) {
  Rng rng(seed);
  auto session = objective.StartSession(alpha);
  std::vector<Worker> shadow;  // mirrors the committed member list
  int serial = 0;

  ASSERT_NEAR(session->current_jq(), EmptyJuryJq(alpha), kTol);

  for (int step = 0; step < steps; ++step) {
    const std::uint64_t move =
        shadow.empty() ? 0 : (shadow.size() >= max_size
                                  ? 1 + rng.UniformInt(2)
                                  : rng.UniformInt(3));
    std::vector<Worker> hypothetical = shadow;
    double score = 0.0;
    if (move == 0) {  // add
      const Worker w = RandomWorker(&rng, serial++, qlo, qhi);
      score = session->ScoreAdd(w);
      hypothetical.push_back(w);
    } else if (move == 1) {  // remove
      const std::size_t idx =
          rng.UniformInt(static_cast<std::uint64_t>(shadow.size()));
      score = session->ScoreRemove(idx);
      hypothetical.erase(hypothetical.begin() +
                         static_cast<std::ptrdiff_t>(idx));
    } else {  // swap
      const std::size_t idx =
          rng.UniformInt(static_cast<std::uint64_t>(shadow.size()));
      const Worker w = RandomWorker(&rng, serial++, qlo, qhi);
      score = session->ScoreSwap(idx, w);
      hypothetical[idx] = w;
    }

    Jury jury(hypothetical);
    ASSERT_NEAR(score, objective.Evaluate(jury, alpha), kTol)
        << objective.name() << " seed=" << seed << " step=" << step
        << " move=" << move << " size=" << hypothetical.size();

    if (rng.Bernoulli(0.3)) {
      session->Rollback();
      // The committed state must be untouched by the discarded move.
      ASSERT_NEAR(session->current_jq(),
                  objective.Evaluate(Jury(shadow), alpha), kTol);
    } else {
      session->Commit();
      shadow = std::move(hypothetical);
      ASSERT_EQ(session->size(), shadow.size());
      ASSERT_NEAR(session->current_jq(),
                  objective.Evaluate(MaterializeMembers(*session), alpha),
                  kTol)
          << objective.name() << " seed=" << seed << " step=" << step;
    }
  }
}

TEST(IncrementalEvalTest, BucketBvChurnMatchesEvaluate) {
  const BucketBvObjective objective;
  for (double alpha : {0.5, 0.3, 0.8}) {
    ChurnAgainstEvaluate(objective, alpha, 101, 200, 0.05, 0.95, 40);
  }
}

TEST(IncrementalEvalTest, BucketBvHighResolutionGrid) {
  BucketJqOptions options;
  options.num_buckets = 400;
  const BucketBvObjective objective(options);
  ChurnAgainstEvaluate(objective, 0.5, 103, 120, 0.05, 0.95, 25);
}

TEST(IncrementalEvalTest, BucketBvShortcutAndDegenerateModes) {
  // Qualities straddling the 0.99 high-quality cutoff force the session in
  // and out of the §4.4 shortcut; qualities at exactly 0.5 exercise the
  // all-phi-zero mode; qualities below 0.5 the flip normalization.
  const BucketBvObjective objective;
  ChurnAgainstEvaluate(objective, 0.5, 107, 150, 0.3, 1.0, 20);
  ChurnAgainstEvaluate(objective, 0.7, 109, 150, 0.3, 1.0, 20);

  // Deterministic walk through the modes.
  auto session = objective.StartSession(0.5);
  const Worker half("half", 0.5, 0.0);
  const Worker sharp("sharp", 0.999, 0.0);
  const Worker solid("solid", 0.8, 0.0);
  session->ScoreAdd(half);
  session->Commit();
  EXPECT_NEAR(session->current_jq(), 0.5, kTol);  // all-0.5 mode
  session->ScoreAdd(sharp);
  session->Commit();
  EXPECT_NEAR(session->current_jq(), 0.999, kTol);  // shortcut mode
  session->ScoreAdd(solid);
  session->Commit();
  EXPECT_NEAR(session->current_jq(), 0.999, kTol);  // still shortcut
  session->ScoreRemove(1);  // drop "sharp": back to the regular DP
  session->Commit();
  EXPECT_NEAR(session->current_jq(),
              objective.Evaluate(MaterializeMembers(*session), 0.5), kTol);
}

TEST(IncrementalEvalTest, ExactBvChurnMatchesEvaluate) {
  const ExactBvObjective objective;
  for (double alpha : {0.5, 0.35}) {
    ChurnAgainstEvaluate(objective, alpha, 211, 150, 0.05, 0.95, 10);
  }
}

TEST(IncrementalEvalTest, ExactBvBeyondCacheCapFallsBackCorrectly) {
  const ExactBvObjective objective;
  Rng rng(223);
  auto session = objective.StartSession(0.5);
  // Grow past the 2^n cache cap (20 members) and make sure scores stay
  // correct through the enumeration fallback and the rebuild on shrink.
  for (std::size_t i = 0; i < 22; ++i) {
    session->ScoreAdd(RandomWorker(&rng, static_cast<int>(i), 0.55, 0.9));
    session->Commit();
  }
  EXPECT_NEAR(session->current_jq(),
              objective.Evaluate(MaterializeMembers(*session), 0.5), kTol);
  // Shrink back under the cap: the cache must rebuild transparently.
  session->ScoreRemove(0);
  session->Commit();
  session->ScoreRemove(0);
  session->Commit();
  EXPECT_NEAR(session->current_jq(),
              objective.Evaluate(MaterializeMembers(*session), 0.5), kTol);
}

TEST(IncrementalEvalTest, MajorityChurnMatchesEvaluate) {
  const MajorityObjective objective;
  for (double alpha : {0.5, 0.2, 0.9}) {
    ChurnAgainstEvaluate(objective, alpha, 307, 250, 0.05, 0.95, 60);
  }
}

TEST(IncrementalEvalTest, MajorityHandlesDegenerateQualities) {
  const MajorityObjective objective;
  ChurnAgainstEvaluate(objective, 0.5, 311, 120, 0.0, 1.0, 30);
}

TEST(IncrementalEvalTest, FullRecomputeSessionIsEvaluateVerbatim) {
  const BucketBvObjective bucket;
  const MajorityObjective majority;
  for (const JqObjective* objective :
       std::vector<const JqObjective*>{&bucket, &majority}) {
    Rng rng(401);
    auto session = objective->StartSession(0.5, /*incremental=*/false);
    std::vector<Worker> shadow;
    for (int step = 0; step < 40; ++step) {
      const Worker w = RandomWorker(&rng, step, 0.4, 0.9);
      const double score = session->ScoreAdd(w);
      shadow.push_back(w);
      // Bit-equal, not just near: the fallback session *is* Evaluate.
      ASSERT_EQ(score, objective->Evaluate(Jury(shadow), 0.5));
      session->Commit();
    }
  }
}

TEST(IncrementalEvalTest, RestagingReplacesThePendingMove) {
  const MajorityObjective objective;
  auto session = objective.StartSession(0.5);
  const Worker a("a", 0.9, 0.0);
  const Worker b("b", 0.6, 0.0);
  session->ScoreAdd(a);
  session->ScoreAdd(b);  // replaces the staged move
  session->Commit();
  ASSERT_EQ(session->size(), 1u);
  EXPECT_EQ(session->members()[0].id, "b");
  EXPECT_NEAR(session->current_jq(), 0.6, kTol);
}

TEST(IncrementalEvalTest, CountersSplitFullAndIncremental) {
  const MajorityObjective objective;
  objective.ResetEvaluationCounters();
  auto session = objective.StartSession(0.5);
  const Worker w("w", 0.7, 0.0);
  session->ScoreAdd(w);
  session->Commit();
  session->ScoreAdd(w);
  session->Rollback();
  EXPECT_EQ(objective.evaluation_counters().incremental, 2u);
  EXPECT_EQ(objective.evaluation_counters().full, 0u);

  Jury jury;
  jury.Add(w);
  objective.Evaluate(jury, 0.5);
  EXPECT_EQ(objective.evaluation_counters().full, 1u);
  EXPECT_EQ(objective.evaluations(), 3u);  // legacy total

  auto reference = objective.StartSession(0.5, /*incremental=*/false);
  reference->ScoreAdd(w);
  EXPECT_EQ(objective.evaluation_counters().full, 2u);
  EXPECT_EQ(objective.evaluation_counters().incremental, 2u);
}

/// Shared harness for the batched-scan contract: against a committed jury
/// of each size in `committed_sizes`, `ScoreAddBatch` must reproduce the
/// scalar `ScoreAdd` score of every candidate bit for bit, and the scores
/// must not depend on how the candidate list is split into batches (the
/// invariant that lets the parallel greedy scan shard with any grain).
void BatchMatchesScalar(const JqObjective& objective, double alpha,
                        bool incremental, std::uint64_t seed) {
  Rng rng(seed);
  auto session = objective.StartSession(alpha, incremental);
  std::vector<Worker> candidates;
  for (int j = 0; j < 24; ++j) {
    candidates.push_back(RandomWorker(&rng, j));
  }
  // Stress the bucket backend's special cases: a §4.4-shortcut candidate,
  // a grid-moving near-max candidate, and exact coin flippers.
  candidates.push_back(Worker("hq", 0.995, 0.0));
  candidates.push_back(Worker("gridmove", 0.949, 0.0));
  candidates.push_back(Worker("coin", 0.5, 0.0));
  candidates.push_back(Worker("flip", 0.2, 0.0));
  std::vector<const Worker*> ptrs;
  for (const Worker& w : candidates) ptrs.push_back(&w);

  for (int committed = 0; committed < 4; ++committed) {
    std::vector<double> scalar(ptrs.size());
    for (std::size_t j = 0; j < ptrs.size(); ++j) {
      scalar[j] = session->ScoreAdd(*ptrs[j]);
      session->Rollback();
    }
    std::vector<double> batched(ptrs.size(), -1.0);
    session->ScoreAddBatch(ptrs.data(), ptrs.size(), batched.data());
    for (std::size_t j = 0; j < ptrs.size(); ++j) {
      EXPECT_EQ(batched[j], scalar[j])
          << objective.name() << " committed=" << committed << " j=" << j
          << " (" << ptrs[j]->id << ")";
    }
    // Batch-composition independence: two half-batches, same scores.
    const std::size_t half = ptrs.size() / 2;
    std::vector<double> split(ptrs.size(), -1.0);
    session->ScoreAddBatch(ptrs.data(), half, split.data());
    session->ScoreAddBatch(ptrs.data() + half, ptrs.size() - half,
                           split.data() + half);
    for (std::size_t j = 0; j < ptrs.size(); ++j) {
      EXPECT_EQ(split[j], batched[j])
          << objective.name() << " committed=" << committed << " j=" << j;
    }
    EXPECT_FALSE(session->has_staged_move());
    // Grow the committed jury through the batch-scored winner, as the
    // greedy solver does, and make sure the session stays coherent.
    const std::size_t winner = static_cast<std::size_t>(committed);
    session->CommitAdd(*ptrs[winner], batched[winner]);
    EXPECT_EQ(session->current_jq(), batched[winner]);
  }
}

TEST(IncrementalEvalTest, ScoreAddBatchMatchesScalarBucketBv) {
  BatchMatchesScalar(BucketBvObjective(), 0.5, true, 31001);
  BatchMatchesScalar(BucketBvObjective(), 0.7, true, 31003);
  BucketJqOptions no_shortcut;
  no_shortcut.high_quality_cutoff = 1.0;
  BatchMatchesScalar(BucketBvObjective(no_shortcut), 0.5, true, 31005);
}

TEST(IncrementalEvalTest, ScoreAddBatchMatchesScalarMajority) {
  BatchMatchesScalar(MajorityObjective(), 0.5, true, 31011);
  BatchMatchesScalar(MajorityObjective(), 0.65, true, 31013);
}

TEST(IncrementalEvalTest, ScoreAddBatchMatchesScalarExactBv) {
  BatchMatchesScalar(ExactBvObjective(), 0.5, true, 31021);
}

TEST(IncrementalEvalTest, ScoreAddBatchMatchesScalarFullRecompute) {
  BatchMatchesScalar(BucketBvObjective(), 0.5, /*incremental=*/false, 31031);
  BatchMatchesScalar(MajorityObjective(), 0.5, /*incremental=*/false, 31033);
}

TEST(IncrementalEvalTest, ScoreAddBatchOnClonesMatchesParent) {
  // The parallel greedy scan scores through per-shard clones; their batch
  // scores must be bit-identical to the parent session's.
  const BucketBvObjective objective;
  Rng rng(31041);
  auto session = objective.StartSession(0.5);
  for (int i = 0; i < 5; ++i) {
    session->ScoreAdd(RandomWorker(&rng, 100 + i));
    session->Commit();
  }
  std::vector<Worker> candidates;
  for (int j = 0; j < 16; ++j) candidates.push_back(RandomWorker(&rng, j));
  std::vector<const Worker*> ptrs;
  for (const Worker& w : candidates) ptrs.push_back(&w);
  std::vector<double> parent(ptrs.size());
  session->ScoreAddBatch(ptrs.data(), ptrs.size(), parent.data());
  auto clone = session->Clone();
  ASSERT_NE(clone, nullptr);
  std::vector<double> cloned(ptrs.size());
  clone->ScoreAddBatch(ptrs.data(), ptrs.size(), cloned.data());
  for (std::size_t j = 0; j < ptrs.size(); ++j) {
    EXPECT_EQ(cloned[j], parent[j]) << "j=" << j;
  }
}

}  // namespace
}  // namespace jury
