#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "crowd/amt.h"
#include "crowd/estimators.h"
#include "crowd/pool.h"
#include "crowd/sentiment.h"
#include "crowd/vote_sim.h"
#include "model/jury.h"
#include "util/rng.h"
#include "util/stats.h"

namespace jury::crowd {
namespace {

// ------------------------------------------------------------------ Pool

TEST(PoolTest, RespectsTruncationBounds) {
  Rng rng(1);
  PoolConfig config;
  config.num_workers = 500;
  const auto pool = GeneratePool(config, &rng).value();
  ASSERT_EQ(pool.size(), 500u);
  for (const Worker& w : pool) {
    EXPECT_GE(w.quality, config.quality_lo);
    EXPECT_LE(w.quality, config.quality_hi);
    EXPECT_GE(w.cost, config.cost_lo);
  }
}

TEST(PoolTest, QualityMomentsTrackConfig) {
  // Use a configuration whose truncation bounds clip almost nothing, so the
  // sample moments should match the Gaussian parameters.
  Rng rng(2);
  PoolConfig config;
  config.num_workers = 20000;
  config.quality_mean = 0.5;
  config.quality_stddev = 0.1;
  const auto pool = GeneratePool(config, &rng).value();
  OnlineStats stats;
  for (const Worker& w : pool) stats.Add(w.quality);
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.1, 0.01);
}

TEST(PoolTest, DefaultTruncationShiftsMomentsPredictably) {
  // With the paper's defaults (mu = 0.7, sigma = sqrt(0.05)) the [lo, 0.99]
  // truncation trims the upper tail, pulling the mean slightly below mu —
  // a documented property of substitution #5, pinned here.
  Rng rng(4);
  PoolConfig config;
  config.num_workers = 20000;
  const auto pool = GeneratePool(config, &rng).value();
  OnlineStats stats;
  for (const Worker& w : pool) stats.Add(w.quality);
  EXPECT_GT(stats.mean(), 0.6);
  EXPECT_LT(stats.mean(), 0.7);
}

TEST(PoolTest, ValidatesConfig) {
  Rng rng(3);
  PoolConfig bad;
  bad.quality_lo = 0.9;
  bad.quality_hi = 0.1;
  EXPECT_FALSE(GeneratePool(bad, &rng).ok());
  EXPECT_FALSE(GeneratePool(PoolConfig{}, nullptr).ok());
  PoolConfig negative;
  negative.num_workers = -1;
  EXPECT_FALSE(GeneratePool(negative, &rng).ok());
}

TEST(PoolTest, DeterministicUnderSeed) {
  Rng a(42), b(42);
  const auto p1 = GeneratePool(PoolConfig{}, &a).value();
  const auto p2 = GeneratePool(PoolConfig{}, &b).value();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1[i].quality, p2[i].quality);
    EXPECT_DOUBLE_EQ(p1[i].cost, p2[i].cost);
  }
}

// ------------------------------------------------------------- Vote sim

TEST(VoteSimTest, TruthFollowsPrior) {
  Rng rng(5);
  int zeros = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) zeros += (SampleTruth(0.3, &rng) == 0);
  EXPECT_NEAR(static_cast<double>(zeros) / trials, 0.3, 0.01);
}

TEST(VoteSimTest, VoteMatchesTruthAtRateQuality) {
  Rng rng(7);
  const int trials = 50000;
  for (int truth : {0, 1}) {
    int correct = 0;
    for (int i = 0; i < trials; ++i) {
      correct += (SimulateVote(0.8, truth, &rng) == truth);
    }
    EXPECT_NEAR(static_cast<double>(correct) / trials, 0.8, 0.01);
  }
}

TEST(VoteSimTest, JuryVotesAlignWithQualities) {
  Rng rng(9);
  const Jury jury = Jury::FromQualities({0.9, 0.6, 0.5});
  std::vector<int> correct(3, 0);
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    const Votes votes = SimulateVotes(jury, 1, &rng);
    for (std::size_t j = 0; j < 3; ++j) correct[j] += (votes[j] == 1);
  }
  EXPECT_NEAR(correct[0] / static_cast<double>(trials), 0.9, 0.01);
  EXPECT_NEAR(correct[1] / static_cast<double>(trials), 0.6, 0.01);
  EXPECT_NEAR(correct[2] / static_cast<double>(trials), 0.5, 0.01);
}

// ------------------------------------------------------------- Campaign

CampaignConfig SmallCampaign() {
  CampaignConfig config;
  config.num_tasks = 60;
  config.tasks_per_hit = 20;
  config.assignments_per_hit = 5;
  config.num_workers = 10;
  return config;
}

TEST(CampaignTest, RealizesQuotasExactly) {
  Rng rng(11);
  const auto config = SmallCampaign();  // 3 HITs * 5 assignments = 15
  const std::vector<double> quality(10, 0.7);
  const std::vector<int> quota{3, 3, 1, 1, 1, 1, 1, 1, 2, 1};
  const auto campaign =
      SimulateCampaign(config, quality, quota, &rng).value();
  for (std::size_t w = 0; w < 10; ++w) {
    EXPECT_EQ(campaign.hits_taken[w], quota[w]) << "worker " << w;
  }
}

TEST(CampaignTest, EveryTaskHasDistinctWorkers) {
  Rng rng(13);
  const auto config = SmallCampaign();
  const std::vector<double> quality(10, 0.7);
  const std::vector<int> quota{3, 3, 1, 1, 1, 1, 1, 1, 2, 1};
  const auto campaign =
      SimulateCampaign(config, quality, quota, &rng).value();
  ASSERT_EQ(campaign.tasks.size(), 60u);
  for (const CampaignTask& task : campaign.tasks) {
    ASSERT_EQ(task.answers.size(), 5u);
    std::set<std::size_t> workers;
    for (const Answer& a : task.answers) workers.insert(a.worker);
    EXPECT_EQ(workers.size(), 5u);
  }
}

TEST(CampaignTest, AnswerCountMatchesQuota) {
  Rng rng(15);
  const auto config = SmallCampaign();
  const std::vector<double> quality(10, 0.7);
  const std::vector<int> quota{3, 3, 1, 1, 1, 1, 1, 1, 2, 1};
  const auto campaign =
      SimulateCampaign(config, quality, quota, &rng).value();
  for (std::size_t w = 0; w < 10; ++w) {
    // Each HIT taken contributes tasks_per_hit answers.
    EXPECT_EQ(campaign.AnswerCount(w),
              static_cast<std::size_t>(quota[w]) * 20u);
  }
}

TEST(CampaignTest, RejectsInfeasibleQuota) {
  Rng rng(17);
  const auto config = SmallCampaign();
  const std::vector<double> quality(10, 0.7);
  EXPECT_FALSE(
      SimulateCampaign(config, quality, std::vector<int>(10, 1), &rng).ok());
  std::vector<int> too_big(10, 0);
  too_big[0] = 15;  // > #HITs
  EXPECT_FALSE(SimulateCampaign(config, quality, too_big, &rng).ok());
}

TEST(CampaignTest, AnswerAccuracyTracksLatentQuality) {
  Rng rng(19);
  CampaignConfig config;
  config.num_tasks = 400;
  config.tasks_per_hit = 20;
  config.assignments_per_hit = 4;
  config.num_workers = 4;
  const std::vector<double> quality{0.9, 0.75, 0.6, 0.5};
  const std::vector<int> quota(4, 20);
  const auto campaign =
      SimulateCampaign(config, quality, quota, &rng).value();
  const auto estimated = EstimateQualitiesEmpirical(campaign).value();
  for (std::size_t w = 0; w < 4; ++w) {
    EXPECT_NEAR(estimated[w], quality[w], 0.06) << "worker " << w;
  }
}

// ------------------------------------------------------------ Estimators

TEST(EstimatorTest, GoldenSubsetUsesOnlyGoldenTasks) {
  Rng rng(23);
  const auto config = SmallCampaign();
  const std::vector<double> quality(10, 0.8);
  const std::vector<int> quota{3, 3, 1, 1, 1, 1, 1, 1, 2, 1};
  const auto campaign =
      SimulateCampaign(config, quality, quota, &rng).value();
  const auto golden =
      EstimateQualitiesGolden(campaign, {0, 1, 2, 3, 4}).value();
  // Workers absent from the golden tasks keep the default quality.
  EmpiricalEstimatorOptions options;
  int defaults = 0;
  for (double q : golden) defaults += (q == options.default_quality);
  EXPECT_GT(defaults, 0);
}

TEST(EstimatorTest, SmoothingPullsTowardsHalf) {
  Rng rng(29);
  const auto config = SmallCampaign();
  const std::vector<double> quality(10, 0.95);
  const std::vector<int> quota{3, 3, 1, 1, 1, 1, 1, 1, 2, 1};
  const auto campaign =
      SimulateCampaign(config, quality, quota, &rng).value();
  EmpiricalEstimatorOptions raw;
  EmpiricalEstimatorOptions smoothed;
  smoothed.smoothing = 50.0;
  const auto q_raw = EstimateQualitiesEmpirical(campaign, raw).value();
  const auto q_smooth =
      EstimateQualitiesEmpirical(campaign, smoothed).value();
  for (std::size_t w = 0; w < 10; ++w) {
    EXPECT_LE(q_smooth[w], q_raw[w] + 1e-12);
    EXPECT_GE(q_smooth[w], 0.5 - 1e-12);
  }
}

TEST(EstimatorTest, RejectsNegativeSmoothing) {
  Rng rng(31);
  const auto config = SmallCampaign();
  const std::vector<double> quality(10, 0.7);
  const std::vector<int> quota{3, 3, 1, 1, 1, 1, 1, 1, 2, 1};
  const auto campaign =
      SimulateCampaign(config, quality, quota, &rng).value();
  EmpiricalEstimatorOptions bad;
  bad.smoothing = -1.0;
  EXPECT_FALSE(EstimateQualitiesEmpirical(campaign, bad).ok());
}

// ------------------------------------------------------------- Sentiment

TEST(SentimentTest, MatchesPaperStatistics) {
  Rng rng(37);
  const auto dataset = MakeSentimentDataset(SentimentConfig{}, &rng).value();
  const auto& campaign = dataset.campaign;

  // 600 tasks, 20 answers each, 128 workers.
  EXPECT_EQ(campaign.tasks.size(), 600u);
  for (const auto& task : campaign.tasks) {
    EXPECT_EQ(task.answers.size(), 20u);
  }
  EXPECT_EQ(dataset.estimated_quality.size(), 128u);

  // Mean quality ~0.71; ~40 workers above 0.8; ~10% below 0.6 (§6.2.1).
  EXPECT_NEAR(dataset.mean_estimated_quality, 0.71, 0.04);
  EXPECT_NEAR(dataset.workers_above_08, 40, 15);
  EXPECT_NEAR(dataset.workers_below_06, 13, 12);

  // Activity profile: two full-timers (600 answers), 67 one-HIT workers
  // (20 answers), average 93.75 answers.
  int full = 0, single = 0;
  long long total_answers = 0;
  for (int w = 0; w < 128; ++w) {
    const int hits = campaign.hits_taken[static_cast<std::size_t>(w)];
    total_answers += static_cast<long long>(hits) * 20;
    if (hits == 30) ++full;
    if (hits == 1) ++single;
  }
  EXPECT_EQ(full, 2);
  EXPECT_EQ(single, 67);
  EXPECT_EQ(total_answers, 12000);  // 600 tasks * 20 votes
}

TEST(SentimentTest, AnswersAreOrderedSequences) {
  Rng rng(41);
  const auto dataset = MakeSentimentDataset(SentimentConfig{}, &rng).value();
  // Each task's answer sequence references valid workers and both labels
  // appear overall (balanced truths).
  int zeros = 0;
  for (const auto& task : dataset.campaign.tasks) {
    zeros += (task.truth == 0);
    for (const auto& a : task.answers) {
      EXPECT_LT(a.worker, 128u);
      EXPECT_TRUE(a.vote == 0 || a.vote == 1);
    }
  }
  EXPECT_GT(zeros, 200);
  EXPECT_LT(zeros, 400);
}

TEST(SentimentTest, RejectsInconsistentConfig) {
  Rng rng(43);
  SentimentConfig bad;
  bad.experts = 200;  // more than the pool
  EXPECT_FALSE(MakeSentimentDataset(bad, &rng).ok());
  SentimentConfig bad2;
  bad2.campaign.num_tasks = 601;  // not a multiple of tasks_per_hit
  EXPECT_FALSE(MakeSentimentDataset(bad2, &rng).ok());
}

}  // namespace
}  // namespace jury::crowd
