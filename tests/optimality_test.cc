// Tests for the paper's central result (Theorem 1 / Corollary 1): Bayesian
// Voting maximizes Jury Quality over ALL voting strategies, deterministic
// and randomized. For tiny juries we can enumerate literally every
// deterministic strategy (a function {0,1}^n -> {0,1}, i.e. 2^(2^n) of
// them) and check each one; randomized strategies are convex combinations
// of deterministic ones, so the deterministic sweep already covers them —
// we still spot-check random mixtures.

#include <cstdint>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "jq/exact.h"
#include "strategy/registry.h"
#include "strategy/voting_strategy.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::RandomJury;

/// A deterministic strategy defined by an arbitrary truth table over all
/// 2^n votings: entry `table >> mask & 1` is the result for voting `mask`.
class TruthTableStrategy final : public VotingStrategy {
 public:
  TruthTableStrategy(std::uint64_t table, int n) : table_(table), n_(n) {}
  std::string name() const override { return "TABLE"; }
  StrategyKind kind() const override { return StrategyKind::kDeterministic; }
  double ProbZero(const Jury& jury, const Votes& votes,
                  double /*alpha*/) const override {
    EXPECT_EQ(static_cast<int>(jury.size()), n_);
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < votes.size(); ++i) {
      if (votes[i]) mask |= (1ull << i);
    }
    const int result = static_cast<int>((table_ >> mask) & 1u);
    return result == 0 ? 1.0 : 0.0;
  }

 private:
  std::uint64_t table_;
  int n_;
};

/// A randomized strategy with an arbitrary probability per voting.
class RandomizedTableStrategy final : public VotingStrategy {
 public:
  explicit RandomizedTableStrategy(std::vector<double> prob_zero)
      : prob_zero_(std::move(prob_zero)) {}
  std::string name() const override { return "RANDTABLE"; }
  StrategyKind kind() const override { return StrategyKind::kRandomized; }
  double ProbZero(const Jury& /*jury*/, const Votes& votes,
                  double /*alpha*/) const override {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < votes.size(); ++i) {
      if (votes[i]) mask |= (1ull << i);
    }
    return prob_zero_[static_cast<std::size_t>(mask)];
  }

 private:
  std::vector<double> prob_zero_;
};

/// Exhaustive check at n = 2: 16 deterministic strategies.
class ExhaustiveOptimalityN2Test
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(ExhaustiveOptimalityN2Test, BvDominatesEveryDeterministicStrategy) {
  const auto [alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 6151);
  const Jury jury = RandomJury(&rng, 2, 0.3, 0.99);
  const double bv_jq = ExactJqBv(jury, alpha).value();
  for (std::uint64_t table = 0; table < (1u << 4); ++table) {
    const TruthTableStrategy s(table, 2);
    EXPECT_LE(ExactJq(jury, s, alpha).value(), bv_jq + 1e-12)
        << "table=" << table << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExhaustiveOptimalityN2Test,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9),
                       ::testing::Values(1, 2, 3, 4)));

/// Exhaustive check at n = 3: all 256 deterministic strategies.
class ExhaustiveOptimalityN3Test : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveOptimalityN3Test, BvDominatesEveryDeterministicStrategy) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 3571);
  const Jury jury = RandomJury(&rng, 3, 0.3, 0.99);
  const double alpha = rng.Uniform(0.05, 0.95);
  const double bv_jq = ExactJqBv(jury, alpha).value();
  for (std::uint64_t table = 0; table < (1u << 8); ++table) {
    const TruthTableStrategy s(table, 3);
    EXPECT_LE(ExactJq(jury, s, alpha).value(), bv_jq + 1e-12)
        << "table=" << table;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExhaustiveOptimalityN3Test,
                         ::testing::Range(1, 9));

/// Random mixtures: randomized strategies cannot beat BV either
/// (Definition 2 strategies are the convex hull of the deterministic ones).
class RandomizedOptimalityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomizedOptimalityTest, BvDominatesRandomizedStrategies) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 12289 +
          static_cast<std::uint64_t>(n));
  const Jury jury = RandomJury(&rng, n, 0.3, 0.99);
  const double alpha = rng.Uniform(0.05, 0.95);
  const double bv_jq = ExactJqBv(jury, alpha).value();
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> prob_zero(1u << n);
    for (double& p : prob_zero) p = rng.Uniform();
    const RandomizedTableStrategy s(std::move(prob_zero));
    EXPECT_LE(ExactJq(jury, s, alpha).value(), bv_jq + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomizedOptimalityTest,
    ::testing::Combine(::testing::Values(2, 4, 6), ::testing::Values(1, 2)));

/// BV dominates every *named* strategy from Table 2 across sizes, priors
/// and quality regimes — the Fig. 8 claim in property form.
class BuiltinDominanceTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(BuiltinDominanceTest, BvIsTheMaximumOverBuiltins) {
  const auto [n, alpha, quality_lo] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 52361 +
          static_cast<std::uint64_t>(alpha * 1000) +
          static_cast<std::uint64_t>(quality_lo * 100));
  for (int trial = 0; trial < 10; ++trial) {
    const Jury jury = RandomJury(&rng, n, quality_lo, 0.99);
    const double bv_jq = ExactJqBv(jury, alpha).value();
    for (const auto& s : MakeAllStrategies()) {
      EXPECT_LE(ExactJq(jury, *s, alpha).value(), bv_jq + 1e-12)
          << s->name() << " n=" << n << " alpha=" << alpha;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuiltinDominanceTest,
    ::testing::Combine(::testing::Values(1, 3, 5, 8, 11),
                       ::testing::Values(0.2, 0.5, 0.8),
                       ::testing::Values(0.3, 0.5, 0.7)));

TEST(OptimalityTest, BvJqEqualsTheAnalyticUpperBound) {
  // Direct construction of max_S JQ: for every voting pick
  // max(P0(V), P1(V)) — the proof of Theorem 1 in executable form.
  Rng rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.UniformInt(8));
    const Jury jury = RandomJury(&rng, n, 0.3, 0.99);
    const double alpha = rng.Uniform(0.02, 0.98);
    const std::vector<double> qs = jury.qualities();
    double upper = 0.0;
    for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
      double p0 = alpha;
      double p1 = 1.0 - alpha;
      for (int i = 0; i < n; ++i) {
        const double q = qs[static_cast<std::size_t>(i)];
        if ((mask >> i) & 1u) {
          p0 *= (1.0 - q);
          p1 *= q;
        } else {
          p0 *= q;
          p1 *= (1.0 - q);
        }
      }
      upper += std::max(p0, p1);
    }
    EXPECT_NEAR(ExactJqBv(jury, alpha).value(), upper, 1e-12);
  }
}

}  // namespace
}  // namespace jury
