#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "core/annealing.h"
#include "core/branch_bound.h"
#include "core/budget_table.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/mvjs.h"
#include "core/objective.h"
#include "core/optjs.h"
#include "jq/closed_form.h"
#include "jq/exact.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::Figure1Workers;
using jury::testing::RandomPool;

JspInstance MakeInstance(std::vector<Worker> workers, double budget,
                         double alpha = 0.5) {
  JspInstance instance;
  instance.candidates = std::move(workers);
  instance.budget = budget;
  instance.alpha = alpha;
  return instance;
}

// ------------------------------------------------------------ Exhaustive

TEST(ExhaustiveSolverTest, FindsTheFigure1Optima) {
  // The paper's budget-quality table (Fig. 1) for the A..G pool:
  //   B=5  -> {F, G}        JQ 75%
  //   B=10 -> {C, G}        JQ 80%
  //   B=15 -> {B, C, G}     JQ 84.5%
  //   B=20 -> {A, C, F, G}  JQ 86.95%
  const ExactBvObjective objective;
  struct Expected {
    double budget;
    std::vector<std::size_t> selected;
    double jq;
    double cost;
  };
  // Note on B=10: the paper lists {C, G} (cost 9); {C, F} ties at exactly
  // 80% JQ (BV follows C either way) and is cheaper (cost 8), and our
  // solver breaks JQ ties towards the cheaper jury.
  const std::vector<Expected> table{
      {5.0, {5, 6}, 0.75, 5.0},
      {10.0, {2, 5}, 0.80, 8.0},
      {15.0, {1, 2, 6}, 0.845, 14.0},
      {20.0, {0, 2, 5, 6}, 0.8695, 20.0},
  };
  for (const auto& expected : table) {
    const auto instance = MakeInstance(Figure1Workers(), expected.budget);
    const auto solution = SolveExhaustive(instance, objective).value();
    EXPECT_EQ(solution.selected, expected.selected)
        << "B=" << expected.budget << " got " << solution.Describe(instance);
    EXPECT_NEAR(solution.jq, expected.jq, 1e-9);
    EXPECT_NEAR(solution.cost, expected.cost, 1e-9);
  }
}

TEST(ExhaustiveSolverTest, RespectsBudgetAlways) {
  Rng rng(3001);
  const ExactBvObjective objective;
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = MakeInstance(
        RandomPool(&rng, 9, 0.5, 0.95, 0.1, 1.0), rng.Uniform(0.2, 2.0));
    const auto solution = SolveExhaustive(instance, objective).value();
    EXPECT_LE(solution.cost, instance.budget + 1e-12);
  }
}

TEST(ExhaustiveSolverTest, ZeroBudgetYieldsEmptyJury) {
  const ExactBvObjective objective;
  Rng rng(1);
  const auto instance =
      MakeInstance(RandomPool(&rng, 5, 0.5, 0.9, 0.5, 1.0), 0.0);
  const auto solution = SolveExhaustive(instance, objective).value();
  EXPECT_TRUE(solution.selected.empty());
  EXPECT_DOUBLE_EQ(solution.jq, 0.5);
}

TEST(ExhaustiveSolverTest, GuardsLargePools) {
  Rng rng(3);
  const ExactBvObjective objective;
  const auto instance =
      MakeInstance(RandomPool(&rng, 23, 0.5, 0.9, 0.1, 1.0), 1.0);
  EXPECT_EQ(SolveExhaustive(instance, objective).status().code(),
            StatusCode::kOutOfRange);
}

TEST(ExhaustiveSolverTest, MaximalityPruningMatchesFullEnumeration) {
  // The Lemma-1 pruning must not change the optimum: compare against the
  // non-monotone path by solving the same instance with the MV objective
  // restricted to juries (no pruning) and the BV objective (pruned).
  Rng rng(3011);
  const ExactBvObjective bv;
  for (int trial = 0; trial < 8; ++trial) {
    const auto instance = MakeInstance(
        RandomPool(&rng, 8, 0.5, 0.95, 0.1, 0.6), rng.Uniform(0.3, 1.5));
    const auto fast = SolveExhaustive(instance, bv).value();
    // Brute-force reference without maximality pruning.
    double best = EmptyJuryJq(instance.alpha);
    for (std::uint64_t mask = 1; mask < (1u << 8); ++mask) {
      Jury jury;
      double cost = 0.0;
      for (std::size_t i = 0; i < 8; ++i) {
        if ((mask >> i) & 1u) {
          jury.Add(instance.candidates[i]);
          cost += instance.candidates[i].cost;
        }
      }
      if (cost > instance.budget) continue;
      best = std::max(best, ExactJqBv(jury, instance.alpha).value());
    }
    EXPECT_NEAR(fast.jq, best, 1e-9);
  }
}

// -------------------------------------------------------------- Annealing

class AnnealingQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(AnnealingQualityTest, ComesCloseToTheExhaustiveOptimum) {
  // The Fig. 7(a)/Table 3 protocol at N = 11 with the paper's cost model
  // (truncated N(0.05, 0.2^2)): a single SA run is noisy (the paper reports
  // errors up to 3%); the best of three seeds must be within 3% of the
  // exhaustive optimum, every run within budget.
  Rng pool_rng(static_cast<std::uint64_t>(GetParam()) * 40093);
  std::vector<Worker> pool;
  for (int i = 0; i < 11; ++i) {
    pool.emplace_back("w" + std::to_string(i), pool_rng.Uniform(0.5, 0.95),
                      pool_rng.TruncatedGaussian(0.05, 0.2, 0.01, 1e9));
  }
  const auto instance = MakeInstance(std::move(pool), 0.5);
  const ExactBvObjective objective;
  const auto optimal = SolveExhaustive(instance, objective).value();
  double best_sa = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng sa_rng(static_cast<std::uint64_t>(GetParam()) * 7 + seed);
    const auto sa = SolveAnnealing(instance, objective, &sa_rng).value();
    EXPECT_LE(sa.cost, instance.budget + 1e-12);
    EXPECT_LE(sa.jq, optimal.jq + 1e-9);
    best_sa = std::max(best_sa, sa.jq);
  }
  EXPECT_GE(best_sa, optimal.jq - 0.03);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AnnealingQualityTest, ::testing::Range(1, 9));

TEST(AnnealingSolverTest, BudgetNeverViolated) {
  Rng rng(4001);
  const BucketBvObjective objective;
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = MakeInstance(
        RandomPool(&rng, 30, 0.5, 0.95, 0.05, 0.5), rng.Uniform(0.1, 1.0));
    Rng sa_rng = rng.Fork();
    const auto solution =
        SolveAnnealing(instance, objective, &sa_rng).value();
    EXPECT_LE(solution.cost, instance.budget + 1e-12);
    // No duplicate selections.
    for (std::size_t i = 1; i < solution.selected.size(); ++i) {
      EXPECT_LT(solution.selected[i - 1], solution.selected[i]);
    }
  }
}

TEST(AnnealingSolverTest, EmptyPoolYieldsPriorOnlySolution) {
  const BucketBvObjective objective;
  const auto instance = MakeInstance({}, 1.0, 0.7);
  Rng rng(5);
  const auto solution = SolveAnnealing(instance, objective, &rng).value();
  EXPECT_TRUE(solution.selected.empty());
  EXPECT_DOUBLE_EQ(solution.jq, 0.7);
}

TEST(AnnealingSolverTest, StatsAreConsistent) {
  Rng rng(4003);
  const BucketBvObjective objective;
  const auto instance =
      MakeInstance(RandomPool(&rng, 20, 0.5, 0.95, 0.05, 0.3), 0.5);
  Rng sa_rng(17);
  AnnealingStats stats;
  ASSERT_TRUE(SolveAnnealing(instance, objective, &sa_rng, {}, &stats).ok());
  // T halves from 1.0 to 1e-8: 27 levels.
  EXPECT_EQ(stats.temperature_levels, 27u);
  EXPECT_EQ(stats.moves_attempted, 27u * 20u);
  EXPECT_GE(stats.moves_attempted, stats.moves_accepted);
  EXPECT_EQ(stats.moves_accepted,
            stats.uphill_accepts + stats.downhill_accepts);
  EXPECT_GT(stats.objective_evaluations, 0u);
}

TEST(AnnealingSolverTest, ValidatesArguments) {
  const BucketBvObjective objective;
  const auto instance = MakeInstance(Figure1Workers(), 10.0);
  Rng rng(1);
  EXPECT_FALSE(SolveAnnealing(instance, objective, nullptr).ok());
  AnnealingOptions bad;
  bad.cooling_factor = 1.5;
  EXPECT_FALSE(SolveAnnealing(instance, objective, &rng, bad).ok());
}

TEST(AnnealingSolverTest, ReturnBestSeenNeverHurts) {
  Rng rng(4007);
  const ExactBvObjective objective;
  for (int trial = 0; trial < 5; ++trial) {
    const auto instance = MakeInstance(
        RandomPool(&rng, 12, 0.5, 0.95, 0.05, 0.3), 0.4);
    Rng rng_final(1000 + static_cast<std::uint64_t>(trial));
    Rng rng_best(1000 + static_cast<std::uint64_t>(trial));
    AnnealingOptions final_opts;
    const auto final_solution =
        SolveAnnealing(instance, objective, &rng_final, final_opts).value();
    AnnealingOptions best_opts;
    best_opts.return_best_seen = true;
    const auto best_solution =
        SolveAnnealing(instance, objective, &rng_best, best_opts).value();
    EXPECT_GE(best_solution.jq, final_solution.jq - 1e-12);
  }
}

TEST(AnnealingSolverTest, RemovalMovesHelpEscapeStuckJuries) {
  // A crafted trap: two cheap mediocre workers fill the budget greedily,
  // while the optimum is the single expensive expert. 1-for-1 swaps cannot
  // leave the trap; removal moves can.
  std::vector<Worker> workers = {
      {"cheap1", 0.55, 0.20}, {"cheap2", 0.55, 0.20}, {"cheap3", 0.55, 0.20},
      {"expert", 0.97, 0.45}};
  const auto instance = MakeInstance(std::move(workers), 0.6);
  const ExactBvObjective objective;
  const auto optimal = SolveExhaustive(instance, objective).value();
  ASSERT_NEAR(optimal.jq, 0.97, 0.01);  // the expert dominates

  int plain_hits = 0;
  int removal_hits = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Rng r1(seed), r2(seed);
    AnnealingOptions plain;
    const auto s1 = SolveAnnealing(instance, objective, &r1, plain).value();
    AnnealingOptions with_removals;
    with_removals.removal_probability = 0.25;
    const auto s2 =
        SolveAnnealing(instance, objective, &r2, with_removals).value();
    plain_hits += (s1.jq >= optimal.jq - 1e-9);
    removal_hits += (s2.jq >= optimal.jq - 1e-9);
    EXPECT_LE(s2.cost, instance.budget + 1e-12);
  }
  EXPECT_GE(removal_hits, plain_hits);
  EXPECT_GT(removal_hits, 30);  // removals should solve it almost always
}

TEST(AnnealingSolverTest, RemovalsDisabledByDefaultMatchVerbatimAlg3) {
  // With removal_probability = 0 the run must be bit-identical to the
  // default configuration (same seed, same moves).
  Rng rng(6007);
  const auto instance =
      MakeInstance(RandomPool(&rng, 15, 0.5, 0.95, 0.05, 0.3), 0.5);
  const ExactBvObjective objective;
  Rng r1(99), r2(99);
  const auto a = SolveAnnealing(instance, objective, &r1).value();
  AnnealingOptions zero;
  zero.removal_probability = 0.0;
  const auto b = SolveAnnealing(instance, objective, &r2, zero).value();
  EXPECT_EQ(a.selected, b.selected);
  EXPECT_DOUBLE_EQ(a.jq, b.jq);
}

// ----------------------------------------------------------------- Greedy

TEST(GreedySolverTest, RespectsBudget) {
  Rng rng(4011);
  const ExactBvObjective objective;
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = MakeInstance(
        RandomPool(&rng, 10, 0.5, 0.95, 0.1, 1.0), rng.Uniform(0.3, 2.0));
    for (const auto& solution :
         {SolveGreedyByQuality(instance, objective).value(),
          SolveGreedyByValuePerCost(instance, objective).value(),
          SolveOddTopK(instance, objective).value()}) {
      EXPECT_LE(solution.cost, instance.budget + 1e-12);
    }
  }
}

TEST(GreedySolverTest, OddTopKSelectsOddSizes) {
  Rng rng(4013);
  const MajorityObjective objective;
  const auto instance =
      MakeInstance(RandomPool(&rng, 9, 0.5, 0.95, 1.0, 1.0), 6.0);
  const auto solution = SolveOddTopK(instance, objective).value();
  EXPECT_EQ(solution.selected.size() % 2, 1u);
}

// -------------------------------------------------------- OPTJS vs MVJS

TEST(SystemComparisonTest, OptjsNeverLosesOnExpectation) {
  // The Fig. 6 claim in miniature: across random instances the BV-driven
  // system achieves at least the MV-driven system's quality (both measured
  // by their own exact JQ, like the paper's end-to-end comparison).
  Rng rng(5099);
  double optjs_total = 0.0;
  double mvjs_total = 0.0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    const auto instance = MakeInstance(
        RandomPool(&rng, 12, 0.4, 0.95, 0.05, 0.4), 0.5);
    Rng r1 = rng.Fork();
    Rng r2 = rng.Fork();
    const auto optjs = SolveOptjs(instance, &r1).value();
    const auto mvjs = SolveMvjs(instance, &r2).value();
    const double optjs_true_jq =
        ExactJqBv(optjs.ToJury(instance), instance.alpha).value();
    const double mvjs_true_jq =
        MajorityJq(mvjs.ToJury(instance), instance.alpha).value();
    optjs_total += optjs_true_jq;
    mvjs_total += mvjs_true_jq;
    // Per instance, BV on OPTJS's jury beats MV on MVJS's jury up to SA
    // noise; allow slack per-trial but none on the mean below.
    EXPECT_GE(optjs_true_jq, mvjs_true_jq - 0.05);
  }
  EXPECT_GE(optjs_total, mvjs_total);
}

TEST(SystemComparisonTest, OptjsExhaustiveDominatesMvjsPointwise) {
  // With the exhaustive OPTJS path (N <= 12 by default) dominance is exact:
  // the optimal BV jury's JQ is >= the MV JQ of ANY feasible jury
  // (Corollary 1 + optimality of the search).
  Rng rng(5101);
  for (int trial = 0; trial < 10; ++trial) {
    const auto instance = MakeInstance(
        RandomPool(&rng, 10, 0.4, 0.95, 0.05, 0.4), 0.5);
    Rng r1 = rng.Fork();
    Rng r2 = rng.Fork();
    OptjsOptions options;
    options.bucket.num_buckets = 400;
    const auto optjs = SolveOptjs(instance, &r1, options).value();
    const auto mvjs = SolveMvjs(instance, &r2).value();
    const double optjs_true_jq =
        ExactJqBv(optjs.ToJury(instance), instance.alpha).value();
    const double mvjs_true_jq =
        MajorityJq(mvjs.ToJury(instance), instance.alpha).value();
    EXPECT_GE(optjs_true_jq, mvjs_true_jq - 0.005);
  }
}

TEST(OptjsFacadeTest, SmallPoolsUseTheExactPath) {
  // Below the exhaustive threshold the facade must return the true optimum
  // regardless of SA luck (same instance, many rng streams, one answer).
  Rng rng(5107);
  const auto instance =
      MakeInstance(RandomPool(&rng, 9, 0.5, 0.95, 0.05, 0.4), 0.5);
  OptjsOptions options;
  options.bucket.num_buckets = 400;
  double first_jq = -1.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng solver_rng(seed);
    const auto solution = SolveOptjs(instance, &solver_rng, options).value();
    if (first_jq < 0.0) first_jq = solution.jq;
    EXPECT_NEAR(solution.jq, first_jq, 1e-12) << "seed " << seed;
  }
}

TEST(OptjsFacadeTest, GreedyFallbackRescuesStuckAnnealing) {
  // The crafted trap from the removal test, at a pool size that forces the
  // SA path (threshold disabled): the facade's greedy fallback must find
  // the expert even when SA gets stuck.
  std::vector<Worker> workers;
  for (int i = 0; i < 12; ++i) {
    workers.emplace_back("cheap" + std::to_string(i), 0.55, 0.20);
  }
  workers.emplace_back("expert", 0.97, 0.45);
  const auto instance = MakeInstance(std::move(workers), 0.6);
  OptjsOptions options;
  options.exhaustive_threshold = 0;  // force the SA+fallback path
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng solver_rng(seed);
    const auto solution = SolveOptjs(instance, &solver_rng, options).value();
    EXPECT_GE(solution.jq, 0.97 - 0.01) << "seed " << seed;
  }
}

// ------------------------------------ incremental/full equivalence harness

/// Every solver must return the same jury — and the same JQ within 1e-12 —
/// whether moves are scored by session delta updates or by from-scratch
/// `Evaluate` calls. 50 seeded instances, both BV objectives and MV.
void ExpectSameSolution(const JspSolution& incremental,
                        const JspSolution& full, const JspInstance& instance,
                        const std::string& label, int inst) {
  EXPECT_EQ(incremental.selected, full.selected)
      << label << " instance " << inst << ": incremental "
      << incremental.Describe(instance) << " vs full "
      << full.Describe(instance);
  EXPECT_NEAR(incremental.jq, full.jq, 1e-12)
      << label << " instance " << inst;
}

TEST(IncrementalEquivalenceTest, AnnealingAndGreedyOnFiftyInstances) {
  Rng rng(90001);
  const BucketBvObjective bucket;
  const MajorityObjective majority;
  for (int inst = 0; inst < 50; ++inst) {
    const auto instance =
        MakeInstance(RandomPool(&rng, 14, 0.4, 0.95, 0.05, 0.4),
                     rng.Uniform(0.3, 1.0));
    const std::uint64_t sa_seed = 5000 + static_cast<std::uint64_t>(inst);
    for (const JqObjective* objective :
         {static_cast<const JqObjective*>(&bucket),
          static_cast<const JqObjective*>(&majority)}) {
      AnnealingOptions inc_opts, full_opts;
      full_opts.use_incremental = false;
      Rng r1(sa_seed), r2(sa_seed);
      const auto inc =
          SolveAnnealing(instance, *objective, &r1, inc_opts).value();
      const auto full =
          SolveAnnealing(instance, *objective, &r2, full_opts).value();
      ExpectSameSolution(inc, full, instance,
                         "annealing/" + objective->name(), inst);

      GreedyOptions g_inc, g_full;
      g_full.use_incremental = false;
      ExpectSameSolution(
          SolveGreedyMarginalGain(instance, *objective, g_inc).value(),
          SolveGreedyMarginalGain(instance, *objective, g_full).value(),
          instance, "marginal-gain/" + objective->name(), inst);
      ExpectSameSolution(
          SolveOddTopK(instance, *objective, g_inc).value(),
          SolveOddTopK(instance, *objective, g_full).value(), instance,
          "odd-top-k/" + objective->name(), inst);
    }
  }
}

TEST(IncrementalEquivalenceTest, ExhaustiveAndBranchBound) {
  Rng rng(90007);
  const BucketBvObjective bucket;
  const ExactBvObjective exact;
  const MajorityObjective majority;
  for (int inst = 0; inst < 15; ++inst) {
    const auto instance =
        MakeInstance(RandomPool(&rng, 10, 0.4, 0.95, 0.05, 0.4),
                     rng.Uniform(0.3, 1.0));
    ExhaustiveOptions ex_inc, ex_full;
    ex_full.use_incremental = false;
    for (const JqObjective* objective :
         {static_cast<const JqObjective*>(&bucket),
          static_cast<const JqObjective*>(&exact),
          static_cast<const JqObjective*>(&majority)}) {
      ExpectSameSolution(
          SolveExhaustive(instance, *objective, ex_inc).value(),
          SolveExhaustive(instance, *objective, ex_full).value(), instance,
          "exhaustive/" + objective->name(), inst);
    }
    BranchBoundOptions bb_inc, bb_full;
    bb_full.use_incremental = false;
    for (const JqObjective* objective :
         {static_cast<const JqObjective*>(&bucket),
          static_cast<const JqObjective*>(&exact)}) {
      ExpectSameSolution(
          SolveBranchAndBound(instance, *objective, bb_inc).value(),
          SolveBranchAndBound(instance, *objective, bb_full).value(),
          instance, "branch-bound/" + objective->name(), inst);
    }
  }
}

TEST(IncrementalEquivalenceTest, ExhaustiveBreaksExactTiesIdentically) {
  // Identical workers produce juries with bit-identical JQ *and* cost; the
  // Gray-code and ascending sweeps visit them in different orders, so the
  // tie-break must not depend on visit order (it prefers the smaller
  // mask, i.e. the ascending sweep's first hit).
  std::vector<Worker> workers = {{"a", 0.7, 1.0}, {"b", 0.7, 1.0},
                                 {"c", 0.8, 1.5}, {"d", 0.7, 1.0}};
  const auto instance = MakeInstance(std::move(workers), 2.5);
  ExhaustiveOptions inc, full;
  full.use_incremental = false;
  const MajorityObjective mv;  // non-monotone: no maximality filter
  const ExactBvObjective bv;
  for (const JqObjective* objective :
       {static_cast<const JqObjective*>(&mv),
        static_cast<const JqObjective*>(&bv)}) {
    const auto a = SolveExhaustive(instance, *objective, inc).value();
    const auto b = SolveExhaustive(instance, *objective, full).value();
    EXPECT_EQ(a.selected, b.selected) << objective->name();
    EXPECT_NEAR(a.jq, b.jq, 1e-12);
  }
}

TEST(IncrementalEquivalenceTest, SolversSpendFarFewerFullEvaluations) {
  // The instrumentation behind the Fig. 7/9 runtime story: with sessions
  // on, annealing's full (from-scratch) evaluation count collapses — only
  // grid rebuilds remain — while the no-incremental path is all-full.
  Rng rng(90011);
  const auto instance = MakeInstance(
      RandomPool(&rng, 100, 0.4, 0.95, 0.05, 0.4), 1.0);
  const BucketBvObjective objective;

  objective.ResetEvaluationCounters();
  Rng r1(7);
  ASSERT_TRUE(SolveAnnealing(instance, objective, &r1).ok());
  const EvaluationCounters with_sessions = objective.evaluation_counters();

  objective.ResetEvaluationCounters();
  AnnealingOptions no_inc;
  no_inc.use_incremental = false;
  Rng r2(7);
  ASSERT_TRUE(SolveAnnealing(instance, objective, &r2, no_inc).ok());
  const EvaluationCounters without = objective.evaluation_counters();

  EXPECT_EQ(without.incremental, 0u);
  EXPECT_GT(with_sessions.incremental, 0u);
  // >= 5x fewer full evaluations is the acceptance bar; in practice the
  // ratio is far larger (full evals only happen on grid rebuilds).
  EXPECT_LT(with_sessions.full * 5, without.full);
}

// ------------------------------------ thread-count determinism harness

/// Scoped JURYOPT_THREADS override; the solvers resolve the variable on
/// every call, so flipping it between runs exercises the real dispatch.
/// Restores the previous value on destruction — the TSAN CI job runs this
/// binary with JURYOPT_THREADS=4 and later tests must still see it.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const std::string& value) {
    const char* prev = std::getenv("JURYOPT_THREADS");
    if (prev != nullptr) {
      had_previous_ = true;
      previous_ = prev;
    }
    ::setenv("JURYOPT_THREADS", value.c_str(), 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("JURYOPT_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("JURYOPT_THREADS");
    }
  }

 private:
  bool had_previous_ = false;
  std::string previous_;
};

/// Every parallelized solver must return the same jury — and the same JQ
/// within 1e-12 — for every thread count (the solvers are documented as
/// bit-deterministic in the thread count; this is the property test behind
/// that claim). 24 seeded instances x JURYOPT_THREADS in {1, 2, 8}.
TEST(ThreadDeterminismTest, AllParallelSolversAcrossThreadCounts) {
  Rng rng(77001);
  const BucketBvObjective bucket;
  const MajorityObjective majority;
  const char* kThreadCounts[] = {"1", "2", "8"};
  for (int inst = 0; inst < 24; ++inst) {
    const auto instance =
        MakeInstance(RandomPool(&rng, 12, 0.4, 0.95, 0.05, 0.4),
                     rng.Uniform(0.3, 1.0));
    const std::uint64_t seed = 8800 + static_cast<std::uint64_t>(inst);

    JspSolution ref_sa, ref_greedy, ref_exhaustive, ref_mv_greedy;
    bool have_ref = false;
    for (const char* threads : kThreadCounts) {
      ScopedThreadsEnv env(threads);
      // Multi-restart annealing: 4 chains split from one seed.
      AnnealingOptions sa_opts;
      sa_opts.num_restarts = 4;
      Rng sa_rng(seed);
      const auto sa =
          SolveAnnealing(instance, bucket, &sa_rng, sa_opts).value();
      // Greedy marginal-gain: sharded candidate scan, both objectives.
      const auto greedy =
          SolveGreedyMarginalGain(instance, bucket, {}).value();
      const auto mv_greedy =
          SolveGreedyMarginalGain(instance, majority, {}).value();
      // Exhaustive: partitioned Gray-code sweep.
      const auto exhaustive =
          SolveExhaustive(instance, bucket, {}).value();

      if (!have_ref) {
        ref_sa = sa;
        ref_greedy = greedy;
        ref_mv_greedy = mv_greedy;
        ref_exhaustive = exhaustive;
        have_ref = true;
        continue;
      }
      EXPECT_EQ(sa.selected, ref_sa.selected)
          << "annealing, instance " << inst << ", threads " << threads;
      EXPECT_NEAR(sa.jq, ref_sa.jq, 1e-12);
      EXPECT_EQ(greedy.selected, ref_greedy.selected)
          << "greedy, instance " << inst << ", threads " << threads;
      EXPECT_NEAR(greedy.jq, ref_greedy.jq, 1e-12);
      EXPECT_EQ(mv_greedy.selected, ref_mv_greedy.selected)
          << "mv greedy, instance " << inst << ", threads " << threads;
      EXPECT_NEAR(mv_greedy.jq, ref_mv_greedy.jq, 1e-12);
      EXPECT_EQ(exhaustive.selected, ref_exhaustive.selected)
          << "exhaustive, instance " << inst << ", threads " << threads;
      EXPECT_NEAR(exhaustive.jq, ref_exhaustive.jq, 1e-12);
    }
  }
}

TEST(ThreadDeterminismTest, BudgetTableAcrossThreadCounts) {
  Rng pool_rng(77011);
  const auto pool = RandomPool(&pool_rng, 10, 0.5, 0.95, 0.05, 0.4);
  const std::vector<double> budgets{0.2, 0.4, 0.6, 0.8};
  std::vector<BudgetQualityRow> reference;
  for (const char* threads : {"1", "2", "8"}) {
    ScopedThreadsEnv env(threads);
    Rng rng(321);
    const auto rows =
        BuildBudgetQualityTable(pool, budgets, 0.5, &rng).value();
    if (reference.empty()) {
      reference = rows;
      continue;
    }
    ASSERT_EQ(rows.size(), reference.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].selected, reference[i].selected)
          << "row " << i << ", threads " << threads;
      EXPECT_NEAR(rows[i].jq, reference[i].jq, 1e-12);
    }
  }
}

TEST(ThreadDeterminismTest, MultiRestartNeverLosesToSingleChainBadly) {
  // Best-of-K is a max over chains that include fresh seeds; across a pool
  // of instances it must at least match a single chain's mean quality.
  Rng rng(77021);
  const BucketBvObjective bucket;
  double single_total = 0.0;
  double multi_total = 0.0;
  for (int inst = 0; inst < 10; ++inst) {
    const auto instance =
        MakeInstance(RandomPool(&rng, 16, 0.4, 0.95, 0.05, 0.4), 0.5);
    Rng r1(42), r2(42);
    AnnealingOptions single;
    const auto s = SolveAnnealing(instance, bucket, &r1, single).value();
    AnnealingOptions multi;
    multi.num_restarts = 4;
    const auto m = SolveAnnealing(instance, bucket, &r2, multi).value();
    single_total += s.jq;
    multi_total += m.jq;
    EXPECT_LE(m.cost, instance.budget + 1e-12);
  }
  EXPECT_GE(multi_total, single_total - 1e-9);
}

TEST(ThreadDeterminismTest, MultiRestartStatsAggregateAllChains) {
  Rng rng(77031);
  const BucketBvObjective bucket;
  const auto instance =
      MakeInstance(RandomPool(&rng, 20, 0.5, 0.95, 0.05, 0.3), 0.5);
  Rng sa_rng(17);
  AnnealingOptions opts;
  opts.num_restarts = 3;
  AnnealingStats stats;
  ASSERT_TRUE(SolveAnnealing(instance, bucket, &sa_rng, opts, &stats).ok());
  // Each chain runs 27 temperature levels of 20 moves (see
  // AnnealingSolverTest.StatsAreConsistent); the aggregate is 3x that.
  EXPECT_EQ(stats.temperature_levels, 3u * 27u);
  EXPECT_EQ(stats.moves_attempted, 3u * 27u * 20u);
  EXPECT_EQ(stats.moves_accepted,
            stats.uphill_accepts + stats.downhill_accepts);
}

TEST(MvjsTest, ReportsExactMajorityJq) {
  Rng rng(5103);
  const auto instance =
      MakeInstance(RandomPool(&rng, 10, 0.5, 0.95, 0.05, 0.4), 0.5);
  Rng solver_rng(9);
  const auto solution = SolveMvjs(instance, &solver_rng).value();
  if (!solution.selected.empty()) {
    EXPECT_NEAR(
        solution.jq,
        MajorityJq(solution.ToJury(instance), instance.alpha).value(), 1e-9);
  }
}

}  // namespace
}  // namespace jury
