// Theorem 3: JQ(J, BV, alpha) == JQ(J + {pseudo-worker alpha}, BV, 0.5),
// verified exactly through the 2^n enumerator, plus edge cases of the
// prior-as-juror view.

#include <tuple>

#include "gtest/gtest.h"
#include "jq/exact.h"
#include "jq/prior_transform.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::RandomJury;

class Theorem3Test
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Theorem3Test, PriorEqualsPseudoWorkerExactly) {
  const auto [n, alpha] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 31 +
          static_cast<std::uint64_t>(alpha * 10000));
  for (int trial = 0; trial < 15; ++trial) {
    const Jury jury = RandomJury(&rng, n, 0.4, 0.99);
    const double with_prior = ExactJqBv(jury, alpha).value();
    const double with_worker =
        ExactJqBv(ApplyPrior(jury, alpha), 0.5).value();
    EXPECT_NEAR(with_prior, with_worker, 1e-12)
        << "n=" << n << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem3Test,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(0.05, 0.2, 0.35, 0.5, 0.65, 0.8,
                                         0.95)));

TEST(Theorem3Test, UninformativePriorAddsNothing) {
  Rng rng(73);
  const Jury jury = RandomJury(&rng, 6, 0.5, 0.95);
  // alpha = 0.5 keeps the jury untouched...
  EXPECT_EQ(ApplyPrior(jury, 0.5).size(), jury.size());
  // ...and even adding an explicit 0.5-quality worker is a no-op for JQ.
  Jury padded = jury;
  padded.Add({"noop", 0.5, 0.0});
  EXPECT_NEAR(ExactJqBv(jury, 0.5).value(), ExactJqBv(padded, 0.5).value(),
              1e-12);
}

TEST(Theorem3Test, StrongPriorDominatesWeakJury) {
  // A 0.95 prior with three 0.55 workers: BV should do at least as well as
  // ignoring the jury entirely.
  const Jury jury = Jury::FromQualities({0.55, 0.55, 0.55});
  EXPECT_GE(ExactJqBv(jury, 0.95).value(), 0.95 - 1e-12);
}

TEST(Theorem3Test, BelowHalfPriorActsAsFlippedWorker) {
  // alpha < 0.5 is a pseudo-worker biased towards answer 1 — the §3.3 flip
  // reinterpretation applies to it like to any juror.
  Rng rng(79);
  for (int trial = 0; trial < 10; ++trial) {
    const Jury jury = RandomJury(&rng, 4, 0.5, 0.9);
    const double alpha = rng.Uniform(0.05, 0.45);
    EXPECT_NEAR(ExactJqBv(jury, alpha).value(),
                ExactJqBv(jury, 1.0 - alpha).value(), 1e-12);
  }
}

TEST(Theorem3Test, PriorChainComposes) {
  // Applying two priors as pseudo-workers composes multiplicatively in the
  // log-odds domain: adding alpha then beta equals a jury with both.
  const Jury jury = Jury::FromQualities({0.7, 0.8});
  const Jury j1 = ApplyPrior(jury, 0.6);
  const Jury j2 = ApplyPrior(j1, 0.7);
  Jury manual = jury;
  manual.Add({"p1", 0.6, 0.0});
  manual.Add({"p2", 0.7, 0.0});
  EXPECT_NEAR(ExactJqBv(j2, 0.5).value(), ExactJqBv(manual, 0.5).value(),
              1e-12);
}

}  // namespace
}  // namespace jury
