#include <cstddef>

#include "gtest/gtest.h"
#include "multiclass/confusion.h"
#include "multiclass/dawid_skene.h"
#include "util/rng.h"

namespace jury::mc {
namespace {

/// Simulates a dense labelling dataset: every worker answers every task.
struct SimulatedWorld {
  McDataset dataset;
  std::vector<std::size_t> truths;
  std::vector<ConfusionMatrix> confusion;
};

SimulatedWorld Simulate(Rng* rng, const std::vector<ConfusionMatrix>& cms,
                        std::size_t num_tasks, std::size_t labels) {
  SimulatedWorld world;
  world.confusion = cms;
  world.dataset.num_workers = cms.size();
  world.dataset.num_labels = labels;
  world.dataset.tasks.resize(num_tasks);
  world.truths.resize(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    const std::size_t truth = rng->UniformInt(labels);
    world.truths[t] = truth;
    for (std::size_t w = 0; w < cms.size(); ++w) {
      // Sample a vote from row `truth` of worker w's confusion matrix.
      const double u = rng->Uniform();
      double acc = 0.0;
      std::size_t vote = labels - 1;
      for (std::size_t k = 0; k < labels; ++k) {
        acc += cms[w](truth, k);
        if (u < acc) {
          vote = k;
          break;
        }
      }
      world.dataset.tasks[t].push_back({w, vote});
    }
  }
  return world;
}

TEST(McDawidSkeneTest, RecoversConfusionMatrices) {
  Rng rng(1);
  std::vector<ConfusionMatrix> cms;
  for (double q : {0.9, 0.8, 0.75, 0.7, 0.85, 0.8}) {
    cms.push_back(ConfusionMatrix::FromQuality(q, 3));
  }
  const auto world = Simulate(&rng, cms, 800, 3);
  const auto result = RunMcDawidSkene(world.dataset).value();
  for (std::size_t w = 0; w < cms.size(); ++w) {
    for (std::size_t j = 0; j < 3; ++j) {
      for (std::size_t k = 0; k < 3; ++k) {
        EXPECT_NEAR(result.confusion[w](j, k), cms[w](j, k), 0.1)
            << "worker " << w << " cell (" << j << "," << k << ")";
      }
    }
  }
}

TEST(McDawidSkeneTest, PosteriorsRecoverTruths) {
  Rng rng(3);
  std::vector<ConfusionMatrix> cms(5, ConfusionMatrix::FromQuality(0.8, 4));
  const auto world = Simulate(&rng, cms, 400, 4);
  const auto result = RunMcDawidSkene(world.dataset).value();
  int correct = 0;
  for (std::size_t t = 0; t < world.truths.size(); ++t) {
    correct += (result.Decide(t, 4) == world.truths[t]);
  }
  EXPECT_GT(static_cast<double>(correct) /
                static_cast<double>(world.truths.size()),
            0.9);
}

TEST(McDawidSkeneTest, HandlesAsymmetricConfusion) {
  // A worker who confuses label 1 with 2 but never 0.
  Rng rng(5);
  ConfusionMatrix skewed(3, {0.95, 0.03, 0.02,   //
                             0.05, 0.55, 0.40,   //
                             0.05, 0.35, 0.60});
  std::vector<ConfusionMatrix> cms{
      skewed, ConfusionMatrix::FromQuality(0.85, 3),
      ConfusionMatrix::FromQuality(0.8, 3),
      ConfusionMatrix::FromQuality(0.8, 3),
      ConfusionMatrix::FromQuality(0.75, 3)};
  const auto world = Simulate(&rng, cms, 1200, 3);
  const auto result = RunMcDawidSkene(world.dataset).value();
  // The asymmetry must show up in the estimate.
  EXPECT_GT(result.confusion[0](0, 0), 0.85);
  EXPECT_GT(result.confusion[0](1, 2), 0.25);
  EXPECT_LT(result.confusion[0](1, 0), 0.15);
}

TEST(McDawidSkeneTest, ConvergesOnEasyData) {
  Rng rng(7);
  std::vector<ConfusionMatrix> cms(4, ConfusionMatrix::FromQuality(0.9, 2));
  const auto world = Simulate(&rng, cms, 200, 2);
  const auto result = RunMcDawidSkene(world.dataset).value();
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.iterations, 100);
}

TEST(McDawidSkeneTest, EstimatedMatricesAreRowStochastic) {
  Rng rng(9);
  std::vector<ConfusionMatrix> cms(3, ConfusionMatrix::FromQuality(0.7, 3));
  const auto world = Simulate(&rng, cms, 100, 3);
  const auto result = RunMcDawidSkene(world.dataset).value();
  for (const auto& cm : result.confusion) {
    EXPECT_TRUE(cm.Validate().ok());
  }
}

TEST(McDawidSkeneTest, UnansweredWorkerStaysNearUniform) {
  McDataset dataset;
  dataset.num_workers = 2;
  dataset.num_labels = 2;
  dataset.tasks.resize(50);
  Rng rng(11);
  for (auto& task : dataset.tasks) {
    task.push_back({0, rng.UniformInt(2)});  // only worker 0 answers
  }
  const auto result = RunMcDawidSkene(dataset).value();
  // Worker 1 never answered: smoothing keeps the estimate uniform.
  EXPECT_NEAR(result.confusion[1](0, 0), 0.5, 1e-9);
  EXPECT_NEAR(result.confusion[1](1, 0), 0.5, 1e-9);
}

TEST(McDawidSkeneTest, ValidatesInputs) {
  McDataset bad;
  bad.num_workers = 0;
  bad.num_labels = 3;
  EXPECT_FALSE(RunMcDawidSkene(bad).ok());

  McDataset out_of_range;
  out_of_range.num_workers = 1;
  out_of_range.num_labels = 2;
  out_of_range.tasks.push_back({{5, 0}});
  EXPECT_FALSE(RunMcDawidSkene(out_of_range).ok());

  McDataset fine;
  fine.num_workers = 1;
  fine.num_labels = 2;
  fine.tasks.push_back({{0, 1}});
  McDawidSkeneOptions opts;
  opts.max_iterations = 0;
  EXPECT_FALSE(RunMcDawidSkene(fine, opts).ok());
  McDawidSkeneOptions bad_prior;
  bad_prior.prior = {0.5, 0.6};
  EXPECT_FALSE(RunMcDawidSkene(fine, bad_prior).ok());
}

}  // namespace
}  // namespace jury::mc
