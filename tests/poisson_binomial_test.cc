#include <cmath>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "util/math.h"
#include "util/poisson_binomial.h"
#include "util/stats.h"
#include "util/rng.h"

namespace jury {
namespace {

TEST(PoissonBinomialTest, EmptyIsPointMassAtZero) {
  PoissonBinomial pb({});
  EXPECT_EQ(pb.size(), 0);
  EXPECT_DOUBLE_EQ(pb.Pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(pb.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(pb.TailAtLeast(0), 1.0);
  EXPECT_DOUBLE_EQ(pb.TailAtLeast(1), 0.0);
}

TEST(PoissonBinomialTest, SingleBernoulli) {
  PoissonBinomial pb({0.3});
  EXPECT_NEAR(pb.Pmf(0), 0.7, 1e-12);
  EXPECT_NEAR(pb.Pmf(1), 0.3, 1e-12);
  EXPECT_NEAR(pb.Mean(), 0.3, 1e-12);
}

TEST(PoissonBinomialTest, MatchesBinomialWhenIdentical) {
  const double p = 0.6;
  const int n = 12;
  PoissonBinomial pb(std::vector<double>(n, p));
  for (int k = 0; k <= n; ++k) {
    const double expected = BinomialCoefficient(n, k) * std::pow(p, k) *
                            std::pow(1.0 - p, n - k);
    EXPECT_NEAR(pb.Pmf(k), expected, 1e-12) << "k=" << k;
  }
}

TEST(PoissonBinomialTest, PmfSumsToOne) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> ps;
    for (int i = 0; i < 30; ++i) ps.push_back(rng.Uniform());
    PoissonBinomial pb(ps);
    double sum = 0.0;
    for (int k = 0; k <= pb.size(); ++k) sum += pb.Pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-10);
    EXPECT_NEAR(pb.Mean(), Mean(ps) * 30.0, 1e-9);
  }
}

TEST(PoissonBinomialTest, MatchesBruteForceEnumeration) {
  Rng rng(7);
  std::vector<double> ps;
  for (int i = 0; i < 10; ++i) ps.push_back(rng.Uniform());
  PoissonBinomial pb(ps);
  std::vector<double> brute(ps.size() + 1, 0.0);
  for (std::uint64_t mask = 0; mask < (1u << ps.size()); ++mask) {
    double prob = 1.0;
    int successes = 0;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      if ((mask >> i) & 1u) {
        prob *= ps[i];
        ++successes;
      } else {
        prob *= 1.0 - ps[i];
      }
    }
    brute[static_cast<std::size_t>(successes)] += prob;
  }
  for (int k = 0; k <= pb.size(); ++k) {
    EXPECT_NEAR(pb.Pmf(k), brute[static_cast<std::size_t>(k)], 1e-12);
  }
}

TEST(PoissonBinomialTest, TailAndCdfAreComplementary) {
  PoissonBinomial pb({0.2, 0.5, 0.8, 0.9});
  for (int k = 0; k <= 5; ++k) {
    EXPECT_NEAR(pb.TailAtLeast(k) + pb.CdfAtMost(k - 1), 1.0, 1e-12);
  }
}

TEST(PoissonBinomialTest, ClampsOutOfRangeProbs) {
  PoissonBinomial pb({-0.5, 1.5});
  EXPECT_NEAR(pb.Pmf(1), 1.0, 1e-12);  // one sure failure + one sure success
}

/// Property sweep: tails are monotone and bounded for random inputs.
class PoissonBinomialPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PoissonBinomialPropertyTest, TailIsMonotoneDecreasing) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<double> ps;
  for (int i = 0; i < n; ++i) ps.push_back(rng.Uniform());
  PoissonBinomial pb(ps);
  double prev = 1.0;
  for (int k = 0; k <= n + 1; ++k) {
    const double tail = pb.TailAtLeast(k);
    EXPECT_LE(tail, prev + 1e-12);
    EXPECT_GE(tail, 0.0);
    EXPECT_LE(tail, 1.0);
    prev = tail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PoissonBinomialPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 5, 17, 50),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace jury
