#include <cmath>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "util/math.h"
#include "util/poisson_binomial.h"
#include "util/stats.h"
#include "util/rng.h"

namespace jury {
namespace {

TEST(PoissonBinomialTest, EmptyIsPointMassAtZero) {
  PoissonBinomial pb({});
  EXPECT_EQ(pb.size(), 0);
  EXPECT_DOUBLE_EQ(pb.Pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(pb.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(pb.TailAtLeast(0), 1.0);
  EXPECT_DOUBLE_EQ(pb.TailAtLeast(1), 0.0);
}

TEST(PoissonBinomialTest, SingleBernoulli) {
  PoissonBinomial pb({0.3});
  EXPECT_NEAR(pb.Pmf(0), 0.7, 1e-12);
  EXPECT_NEAR(pb.Pmf(1), 0.3, 1e-12);
  EXPECT_NEAR(pb.Mean(), 0.3, 1e-12);
}

TEST(PoissonBinomialTest, MatchesBinomialWhenIdentical) {
  const double p = 0.6;
  const int n = 12;
  PoissonBinomial pb(std::vector<double>(n, p));
  for (int k = 0; k <= n; ++k) {
    const double expected = BinomialCoefficient(n, k) * std::pow(p, k) *
                            std::pow(1.0 - p, n - k);
    EXPECT_NEAR(pb.Pmf(k), expected, 1e-12) << "k=" << k;
  }
}

TEST(PoissonBinomialTest, PmfSumsToOne) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> ps;
    for (int i = 0; i < 30; ++i) ps.push_back(rng.Uniform());
    PoissonBinomial pb(ps);
    double sum = 0.0;
    for (int k = 0; k <= pb.size(); ++k) sum += pb.Pmf(k);
    EXPECT_NEAR(sum, 1.0, 1e-10);
    EXPECT_NEAR(pb.Mean(), Mean(ps) * 30.0, 1e-9);
  }
}

TEST(PoissonBinomialTest, MatchesBruteForceEnumeration) {
  Rng rng(7);
  std::vector<double> ps;
  for (int i = 0; i < 10; ++i) ps.push_back(rng.Uniform());
  PoissonBinomial pb(ps);
  std::vector<double> brute(ps.size() + 1, 0.0);
  for (std::uint64_t mask = 0; mask < (1u << ps.size()); ++mask) {
    double prob = 1.0;
    int successes = 0;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      if ((mask >> i) & 1u) {
        prob *= ps[i];
        ++successes;
      } else {
        prob *= 1.0 - ps[i];
      }
    }
    brute[static_cast<std::size_t>(successes)] += prob;
  }
  for (int k = 0; k <= pb.size(); ++k) {
    EXPECT_NEAR(pb.Pmf(k), brute[static_cast<std::size_t>(k)], 1e-12);
  }
}

TEST(PoissonBinomialTest, TailAndCdfAreComplementary) {
  PoissonBinomial pb({0.2, 0.5, 0.8, 0.9});
  for (int k = 0; k <= 5; ++k) {
    EXPECT_NEAR(pb.TailAtLeast(k) + pb.CdfAtMost(k - 1), 1.0, 1e-12);
  }
}

TEST(PoissonBinomialTest, ClampsOutOfRangeProbs) {
  PoissonBinomial pb({-0.5, 1.5});
  EXPECT_NEAR(pb.Pmf(1), 1.0, 1e-12);  // one sure failure + one sure success
}

/// Property sweep: tails are monotone and bounded for random inputs.
class PoissonBinomialPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PoissonBinomialPropertyTest, TailIsMonotoneDecreasing) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<double> ps;
  for (int i = 0; i < n; ++i) ps.push_back(rng.Uniform());
  PoissonBinomial pb(ps);
  double prev = 1.0;
  for (int k = 0; k <= n + 1; ++k) {
    const double tail = pb.TailAtLeast(k);
    EXPECT_LE(tail, prev + 1e-12);
    EXPECT_GE(tail, 0.0);
    EXPECT_LE(tail, 1.0);
    prev = tail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PoissonBinomialPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 5, 17, 50),
                       ::testing::Values(1, 2, 3)));

// ------------------------------------------------ AddTrial / RemoveTrial

TEST(PoissonBinomialDeltaTest, AddTrialMatchesBatchConstruction) {
  Rng rng(11);
  std::vector<double> ps;
  PoissonBinomial incremental({});
  for (int i = 0; i < 40; ++i) {
    ps.push_back(rng.Uniform());
    incremental.AddTrial(ps.back());
    const PoissonBinomial batch(ps);
    ASSERT_EQ(incremental.size(), batch.size());
    for (int k = 0; k <= batch.size(); ++k) {
      // Bit-identical: AddTrial is exactly the constructor's fold step.
      ASSERT_EQ(incremental.Pmf(k), batch.Pmf(k)) << "i=" << i << " k=" << k;
    }
  }
}

TEST(PoissonBinomialDeltaTest, AddThenRemoveRoundTripsThePmf) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> ps;
    const int n = 1 + static_cast<int>(rng.UniformInt(60));
    for (int i = 0; i < n; ++i) ps.push_back(rng.Uniform());
    PoissonBinomial pb(ps);
    const std::vector<double> before = pb.pmf();
    const double extra = rng.Uniform();
    pb.AddTrial(extra);
    pb.RemoveTrial(extra);
    ASSERT_EQ(pb.pmf().size(), before.size());
    for (std::size_t k = 0; k < before.size(); ++k) {
      EXPECT_NEAR(pb.pmf()[k], before[k], 1e-12)
          << "trial=" << trial << " k=" << k << " extra=" << extra;
    }
    EXPECT_NEAR(pb.Mean(), Mean(ps) * n, 1e-9);
  }
}

TEST(PoissonBinomialDeltaTest, RoundTripHandlesDegenerateProbs) {
  // p = 0 and p = 1 convolve as identity/shift and must invert exactly;
  // also exercise them mixed with interior probabilities.
  for (double extra : {0.0, 1.0, 0.5, 1e-9, 1.0 - 1e-9}) {
    PoissonBinomial pb({0.0, 1.0, 0.3, 0.7});
    const std::vector<double> before = pb.pmf();
    pb.AddTrial(extra);
    pb.RemoveTrial(extra);
    ASSERT_EQ(pb.pmf().size(), before.size()) << "extra=" << extra;
    for (std::size_t k = 0; k < before.size(); ++k) {
      EXPECT_NEAR(pb.pmf()[k], before[k], 1e-12)
          << "extra=" << extra << " k=" << k;
    }
  }
}

TEST(PoissonBinomialDeltaTest, RemoveAnyTrialMatchesRebuiltDistribution) {
  Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> ps;
    const int n = 2 + static_cast<int>(rng.UniformInt(40));
    for (int i = 0; i < n; ++i) {
      // Include occasional degenerate and near-degenerate entries.
      const double u = rng.Uniform();
      ps.push_back(u < 0.1 ? 0.0 : (u > 0.9 ? 1.0 : rng.Uniform()));
    }
    PoissonBinomial pb(ps);
    const std::size_t victim = rng.UniformInt(static_cast<std::uint64_t>(n));
    pb.RemoveTrial(ps[victim]);

    std::vector<double> rest = ps;
    rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(victim));
    const PoissonBinomial rebuilt(rest);
    ASSERT_EQ(pb.size(), rebuilt.size());
    for (int k = 0; k <= rebuilt.size(); ++k) {
      EXPECT_NEAR(pb.Pmf(k), rebuilt.Pmf(k), 1e-12)
          << "trial=" << trial << " k=" << k;
    }
  }
}

TEST(PoissonBinomialDeltaTest, LongAddRemoveChurnStaysAccurate) {
  // A solver-shaped workload: hundreds of interleaved adds/removes must not
  // accumulate error beyond the 1e-12 contract.
  Rng rng(19);
  std::vector<double> live;
  PoissonBinomial pb({});
  for (int step = 0; step < 400; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      live.push_back(rng.Uniform());
      pb.AddTrial(live.back());
    } else {
      const std::size_t victim =
          rng.UniformInt(static_cast<std::uint64_t>(live.size()));
      pb.RemoveTrial(live[victim]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
  }
  const PoissonBinomial rebuilt(live);
  ASSERT_EQ(pb.size(), rebuilt.size());
  for (int k = 0; k <= rebuilt.size(); ++k) {
    EXPECT_NEAR(pb.Pmf(k), rebuilt.Pmf(k), 1e-12) << "k=" << k;
  }
}

TEST(PoissonBinomialBatchTest, AddTrialBatchIsBitIdenticalToScalarAdds) {
  Rng rng(23);
  for (int n : {0, 1, 7, 64, 300}) {
    std::vector<double> probs;
    for (int i = 0; i < n; ++i) probs.push_back(rng.Uniform());
    probs.push_back(0.0);  // degenerate trials must round-trip too
    probs.push_back(1.0);
    PoissonBinomial scalar({});
    for (double p : probs) scalar.AddTrial(p);
    PoissonBinomial batched({});
    batched.AddTrialBatch(probs.data(), probs.size());
    ASSERT_EQ(scalar.size(), batched.size()) << "n=" << n;
    for (int k = 0; k <= scalar.size(); ++k) {
      EXPECT_EQ(scalar.Pmf(k), batched.Pmf(k)) << "n=" << n << " k=" << k;
    }
    EXPECT_EQ(scalar.Mean(), batched.Mean());
  }
}

TEST(PoissonBinomialBatchTest, EvaluateBatchMatchesAddTrialThenQueries) {
  // The greedy-scan kernel contract: for every candidate p, the batched
  // tail/cdf equals {copy; AddTrial(p); TailAtLeast/CdfAtMost} bit for
  // bit — including the clamped out-of-range and degenerate-p cases.
  Rng rng(29);
  for (int n : {0, 1, 5, 40, 200}) {
    std::vector<double> committed;
    for (int i = 0; i < n; ++i) committed.push_back(rng.Uniform(0.05, 0.95));
    const PoissonBinomial pb(committed);
    std::vector<double> candidates;
    for (int j = 0; j < 37; ++j) candidates.push_back(rng.Uniform());
    candidates.push_back(0.0);
    candidates.push_back(1.0);
    candidates.push_back(-0.25);  // clamps like AddTrial
    candidates.push_back(1.75);
    for (int tail_k : {-1, 0, 1, n / 2, n / 2 + 1, n + 1, n + 2}) {
      for (int cdf_k : {-1, 0, n / 2, n + 1, n + 5}) {
        std::vector<double> tails(candidates.size());
        std::vector<double> cdfs(candidates.size());
        pb.EvaluateBatch(candidates.data(), candidates.size(), tail_k,
                         cdf_k, tails.data(), cdfs.data());
        for (std::size_t j = 0; j < candidates.size(); ++j) {
          PoissonBinomial copy = pb;
          copy.AddTrial(candidates[j]);
          EXPECT_EQ(tails[j], copy.TailAtLeast(tail_k))
              << "n=" << n << " j=" << j << " tail_k=" << tail_k;
          EXPECT_EQ(cdfs[j], copy.CdfAtMost(cdf_k))
              << "n=" << n << " j=" << j << " cdf_k=" << cdf_k;
        }
      }
    }
  }
}

TEST(PoissonBinomialBatchTest, EvaluateBatchHonorsNullOutputs) {
  const PoissonBinomial pb({0.3, 0.8});
  const double probs[] = {0.5, 0.9};
  double tails[2] = {-1.0, -1.0};
  pb.EvaluateBatch(probs, 2, 2, 0, tails, nullptr);
  PoissonBinomial copy = pb;
  copy.AddTrial(0.5);
  EXPECT_EQ(tails[0], copy.TailAtLeast(2));
  double cdfs[2] = {-1.0, -1.0};
  pb.EvaluateBatch(probs, 2, 0, 1, nullptr, cdfs);
  EXPECT_EQ(cdfs[0], copy.CdfAtMost(1));
}

}  // namespace
}  // namespace jury
