// Tests for the binary pool-snapshot format: a written snapshot must load
// back bit-identical (columns and ids), every truncation and every
// single-bit corruption of a small image must be rejected as a Status
// (never UB, never a silently wrong pool), and a snapshot-planned solve
// must report exactly what the CSV-planned solve reports.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "api/solve.h"
#include "model/pool_snapshot.h"
#include "model/worker_pool_view.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/simd_dispatch.h"

namespace jury {
namespace {

using jury::testing::Figure1Workers;
using jury::testing::RandomPool;

std::string TempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr && dir[0] != '\0' ? dir : "/tmp") + "/" +
         name;
}

std::vector<std::byte> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::vector<std::byte> bytes;
  if (f != nullptr) {
    std::fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<std::size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  return bytes;
}

void ExpectSnapshotMatchesView(const PoolSnapshot& snapshot,
                               const std::vector<Worker>& workers,
                               const WorkerPoolView& view) {
  ASSERT_EQ(snapshot.size(), workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    EXPECT_EQ(snapshot.id(i), workers[i].id) << i;
    EXPECT_EQ(snapshot.quality()[i], view.quality()[i]) << i;
    EXPECT_EQ(snapshot.cost()[i], view.cost()[i]) << i;
    EXPECT_EQ(snapshot.norm_quality()[i], view.norm_quality()[i]) << i;
    EXPECT_EQ(snapshot.log_odds()[i], view.log_odds()[i]) << i;
  }
}

TEST(PoolSnapshotTest, RoundTripIsBitIdentical) {
  Rng rng(9901);
  std::vector<Worker> workers = RandomPool(&rng, 300, 0.0, 1.0, 0.0, 3.0);
  workers.push_back(Worker("", 0.5, 0.0));  // empty id is legal
  const WorkerPoolView view(workers);
  const std::string path = TempPath("juryopt_snapshot_test.snap");
  ASSERT_TRUE(PoolSnapshot::Write(path, workers, view).ok());

  auto loaded = PoolSnapshot::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ExpectSnapshotMatchesView(loaded.value(), workers, view);

  // FromBytes over the same image must agree with the mapped load.
  const std::vector<std::byte> bytes = ReadFile(path);
  auto adopted = PoolSnapshot::FromBytes(bytes.data(), bytes.size());
  ASSERT_TRUE(adopted.ok()) << adopted.status().message();
  ExpectSnapshotMatchesView(adopted.value(), workers, view);

  const std::vector<Worker> materialized =
      loaded.value().MaterializeWorkers();
  ASSERT_EQ(materialized.size(), workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    EXPECT_EQ(materialized[i].id, workers[i].id);
    EXPECT_EQ(materialized[i].quality, workers[i].quality);
    EXPECT_EQ(materialized[i].cost, workers[i].cost);
  }
  std::remove(path.c_str());
}

TEST(PoolSnapshotTest, EmptyPoolRoundTrips) {
  const std::vector<Worker> none;
  const WorkerPoolView view(none);
  const std::string path = TempPath("juryopt_snapshot_empty.snap");
  ASSERT_TRUE(PoolSnapshot::Write(path, none, view).ok());
  auto loaded = PoolSnapshot::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().size(), 0u);
  std::remove(path.c_str());
}

TEST(PoolSnapshotTest, EveryTruncationIsRejected) {
  const std::vector<Worker> workers = Figure1Workers();
  const WorkerPoolView view(workers);
  const std::string path = TempPath("juryopt_snapshot_trunc.snap");
  ASSERT_TRUE(PoolSnapshot::Write(path, workers, view).ok());
  const std::vector<std::byte> bytes = ReadFile(path);
  std::remove(path.c_str());
  ASSERT_GT(bytes.size(), PoolSnapshot::kHeaderBytes);
  for (std::size_t prefix = 0; prefix < bytes.size(); ++prefix) {
    auto result = PoolSnapshot::FromBytes(bytes.data(), prefix);
    EXPECT_FALSE(result.ok()) << "prefix " << prefix << " accepted";
  }
}

TEST(PoolSnapshotTest, EverySingleBitFlipIsRejected) {
  // Header bytes are covered by the header checksum (or are the checksum /
  // reserved field themselves), payload bytes by the blocked payload
  // checksum — so no single-bit corruption anywhere in the image may
  // attach.
  const std::vector<Worker> workers = Figure1Workers();
  const WorkerPoolView view(workers);
  const std::string path = TempPath("juryopt_snapshot_flip.snap");
  ASSERT_TRUE(PoolSnapshot::Write(path, workers, view).ok());
  const std::vector<std::byte> bytes = ReadFile(path);
  std::remove(path.c_str());
  std::vector<std::byte> corrupted = bytes;
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      corrupted[byte] = bytes[byte] ^ std::byte{1u << bit};
      auto result = PoolSnapshot::FromBytes(corrupted.data(), corrupted.size());
      EXPECT_FALSE(result.ok()) << "byte " << byte << " bit " << bit;
      corrupted[byte] = bytes[byte];
    }
  }
}

TEST(PoolSnapshotTest, ChecksumIsIdenticalAcrossSimdLevels) {
  // The checksum is part of the wire format, so the scalar and vector
  // hash kernels must produce byte-identical images — and each level must
  // accept what the other wrote.
  Rng rng(9907);
  const std::vector<Worker> workers = RandomPool(&rng, 500, 0.0, 1.0, 0.0, 2.0);
  const WorkerPoolView view(workers);
  const std::string scalar_path = TempPath("juryopt_snapshot_scalar.snap");
  const std::string vector_path = TempPath("juryopt_snapshot_vector.snap");

  const simd::Level previous = simd::ActiveLevel();
  ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
  ASSERT_TRUE(PoolSnapshot::Write(scalar_path, workers, view).ok());
  const std::vector<std::byte> scalar_bytes = ReadFile(scalar_path);

  if (simd::Avx2Available()) {
    ASSERT_TRUE(simd::SetLevel(simd::Level::kAvx2));
    ASSERT_TRUE(PoolSnapshot::Write(vector_path, workers, view).ok());
    const std::vector<std::byte> vector_bytes = ReadFile(vector_path);
    ASSERT_EQ(scalar_bytes.size(), vector_bytes.size());
    EXPECT_EQ(std::memcmp(scalar_bytes.data(), vector_bytes.data(),
                          scalar_bytes.size()),
              0);
    EXPECT_TRUE(
        PoolSnapshot::FromBytes(scalar_bytes.data(), scalar_bytes.size())
            .ok());
    std::remove(vector_path.c_str());
  }
  ASSERT_TRUE(simd::SetLevel(simd::Level::kScalar));
  EXPECT_TRUE(PoolSnapshot::FromBytes(scalar_bytes.data(), scalar_bytes.size())
                  .ok());
  simd::SetLevel(previous);
  std::remove(scalar_path.c_str());
}

TEST(PoolSnapshotTest, SnapshotPlanSolvesLikeCsvPlan) {
  Rng rng(9909);
  const std::vector<Worker> workers = RandomPool(&rng, 400, 0.0, 1.0, 0.01, 1.0);
  const WorkerPoolView view(workers);
  const std::string path = TempPath("juryopt_snapshot_plan.snap");
  ASSERT_TRUE(PoolSnapshot::Write(path, workers, view).ok());

  auto memory_plan = api::PoolPlanContext::Plan(workers);
  ASSERT_TRUE(memory_plan.ok());
  auto snapshot_plan = api::PoolPlanContext::PlanFromSnapshot(path);
  ASSERT_TRUE(snapshot_plan.ok()) << snapshot_plan.status().message();
  std::remove(path.c_str());
  EXPECT_STREQ(memory_plan.value().pool_source(), "memory");
  EXPECT_STREQ(snapshot_plan.value().pool_source(), "snapshot");
  ASSERT_EQ(snapshot_plan.value().num_candidates(), workers.size());

  for (const char* solver : {"greedy-mg", "greedy-quality", "annealing"}) {
    api::SolveRequest request;
    request.solver = solver;
    request.budget = 2.5;
    auto memory_report = memory_plan.value().Solve(request);
    auto snapshot_report = snapshot_plan.value().Solve(request);
    ASSERT_TRUE(memory_report.ok()) << solver;
    ASSERT_TRUE(snapshot_report.ok()) << solver;
    // Identical up to wall clock: same jury, same score, same counters.
    EXPECT_EQ(memory_report.value().solution.selected,
              snapshot_report.value().solution.selected)
        << solver;
    EXPECT_EQ(memory_report.value().solution.jq,
              snapshot_report.value().solution.jq)
        << solver;
    EXPECT_EQ(memory_report.value().solution.cost,
              snapshot_report.value().solution.cost)
        << solver;
    EXPECT_EQ(memory_report.value().stats, snapshot_report.value().stats)
        << solver;
  }
}

}  // namespace
}  // namespace jury
