#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/env.h"
#include "util/histogram.h"
#include "util/math.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

namespace jury {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Status FailsThrough() {
  JURY_RETURN_NOT_OK(Status::OutOfRange("deep"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<double> Half(double x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return x / 2.0;
}

Result<double> Quarter(double x) {
  double h = 0.0;
  JURY_ASSIGN_OR_RETURN(h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_DOUBLE_EQ(Quarter(8.0).value(), 2.0);
  EXPECT_FALSE(Quarter(-1.0).ok());
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Gaussian(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(RngTest, TruncatedGaussianRespectsBounds) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.TruncatedGaussian(0.7, 0.5, 0.5, 0.9);
    EXPECT_GE(x, 0.5);
    EXPECT_LE(x, 0.9);
  }
}

TEST(RngTest, BetaInUnitIntervalWithRightMean) {
  Rng rng(31);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.Beta(2.0, 3.0);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.mean(), 2.0 / 5.0, 0.01);
}

TEST(RngTest, GammaMeanEqualsShape) {
  Rng rng(37);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gamma(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    auto sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (std::size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  Rng rng(47);
  std::vector<int> counts(5, 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t s : rng.SampleWithoutReplacement(5, 2)) {
      counts[s] += 1;
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.4, 0.02);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(99);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

// ------------------------------------------------------------------ Math

TEST(MathTest, LogOddsRoundTripsThroughSigmoid) {
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    EXPECT_NEAR(Sigmoid(LogOdds(q)), q, 1e-12);
  }
}

TEST(MathTest, LogOddsSignMatchesHalf) {
  EXPECT_GT(LogOdds(0.7), 0.0);
  EXPECT_LT(LogOdds(0.3), 0.0);
  EXPECT_DOUBLE_EQ(LogOdds(0.5), 0.0);
}

TEST(MathTest, LogOddsIsStrictlyIncreasing) {
  double prev = LogOdds(0.01);
  for (double q = 0.02; q < 1.0; q += 0.01) {
    const double cur = LogOdds(q);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(MathTest, LogAddMatchesDirectComputation) {
  EXPECT_NEAR(LogAdd(std::log(0.3), std::log(0.4)), std::log(0.7), 1e-12);
  EXPECT_NEAR(LogAdd(-1000.0, -1000.0), -1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, LogSumExpHandlesEmptyAndSingle) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(LogSumExp({2.5}), 2.5);
  EXPECT_NEAR(LogSumExp({std::log(1.0), std::log(2.0), std::log(3.0)}),
              std::log(6.0), 1e-12);
}

TEST(MathTest, ClampWorks) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathTest, BinomialCoefficient) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 11), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, -1), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(52, 5), 2598960.0);
}

// ----------------------------------------------------------------- Stats

TEST(StatsTest, OnlineMatchesBatch) {
  Rng rng(53);
  std::vector<double> xs;
  OnlineStats online;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(1.0, 2.0);
    xs.push_back(x);
    online.Add(x);
  }
  EXPECT_NEAR(online.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(online.stddev(), StdDev(xs), 1e-9);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
  OnlineStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
}

TEST(StatsTest, SummarizeFields) {
  Summary s = Summarize({3.0, 1.0, 2.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, BinsAndEdges) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);   // bin 0
  h.Add(0.3);   // bin 1
  h.Add(0.55);  // bin 2
  h.Add(0.99);  // bin 3
  h.Add(-1.0);  // clamps into bin 0
  h.Add(2.0);   // clamps into bin 3
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(3), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 0.5);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(RangeCounterTest, MatchesTable3Semantics) {
  // The paper's Table 3 ranges (percent): [0,0.01], (0.01,0.1], (0.1,1],
  // (1,3], (3,+inf).
  RangeCounter counter({0.0, 0.01, 0.1, 1.0, 3.0});
  counter.Add(0.0);    // first
  counter.Add(0.01);   // first (closed)
  counter.Add(0.05);   // second
  counter.Add(0.1);    // second (closed above)
  counter.Add(0.5);    // third
  counter.Add(2.0);    // fourth
  counter.Add(100.0);  // overflow
  EXPECT_EQ(counter.total(), 7u);
  EXPECT_EQ(counter.count(0), 2u);
  EXPECT_EQ(counter.count(1), 2u);
  EXPECT_EQ(counter.count(2), 1u);
  EXPECT_EQ(counter.count(3), 1u);
  EXPECT_EQ(counter.count(4), 1u);
  EXPECT_EQ(counter.label(0), "[0, 0.01]");
  EXPECT_EQ(counter.label(4), "(3, +inf)");
}

TEST(RangeCounterTest, BelowRangeFallsIntoOverflowBucket) {
  // Documented semantics: values below the first edge land in the final
  // catch-all bucket (they cannot occur in Table 3, where gaps are >= 0).
  RangeCounter counter({0.0, 1.0, 2.0});
  counter.Add(-0.5);
  EXPECT_EQ(counter.count(counter.num_buckets() - 1), 1u);
}

// ----------------------------------------------------------------- Table

TEST(TableTest, RendersAlignedColumns) {
  Table t({"Budget", "JQ"});
  t.AddRow({"5", "75.00%"});
  t.AddRow({"10", "80.00%"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Budget"), std::string::npos);
  EXPECT_NE(s.find("80.00%"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.AddRow({"x,y", "he said \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrips) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  const std::string path = ::testing::TempDir() + "/jury_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent-dir/file.csv").ok());
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(Format(0.12345, 3), "0.123");
  EXPECT_EQ(FormatPercent(0.845), "84.50%");
  EXPECT_EQ(FormatPercent(0.845, 1), "84.5%");
}

// ------------------------------------------------------------------- Env

TEST(EnvTest, FallsBackWhenUnset) {
  EXPECT_EQ(GetEnvInt("JURY_TEST_UNSET_VAR", 7), 7);
  EXPECT_DOUBLE_EQ(GetEnvDouble("JURY_TEST_UNSET_VAR", 2.5), 2.5);
  EXPECT_TRUE(GetEnvFlag("JURY_TEST_UNSET_VAR", true));
}

TEST(EnvTest, ParsesSetValues) {
  ::setenv("JURY_TEST_SET_VAR", "42", 1);
  EXPECT_EQ(GetEnvInt("JURY_TEST_SET_VAR", 0), 42);
  ::setenv("JURY_TEST_SET_VAR", "1.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("JURY_TEST_SET_VAR", 0.0), 1.5);
  ::setenv("JURY_TEST_SET_VAR", "0", 1);
  EXPECT_FALSE(GetEnvFlag("JURY_TEST_SET_VAR", true));
  ::unsetenv("JURY_TEST_SET_VAR");
}

TEST(EnvTest, RejectsGarbage) {
  ::setenv("JURY_TEST_BAD_VAR", "not-a-number", 1);
  EXPECT_EQ(GetEnvInt("JURY_TEST_BAD_VAR", 5), 5);
  EXPECT_DOUBLE_EQ(GetEnvDouble("JURY_TEST_BAD_VAR", 1.5), 1.5);
  ::unsetenv("JURY_TEST_BAD_VAR");
}

// ----------------------------------------------------------------- Timer

TEST(TimerTest, MeasuresNonNegativeElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());
}

}  // namespace
}  // namespace jury
