#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/env.h"
#include "util/histogram.h"
#include "util/json.h"
#include "util/math.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stats_registry.h"
#include "util/status.h"
#include "util/table.h"
#include "util/timer.h"

namespace jury {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 8; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

Status FailsThrough() {
  JURY_RETURN_NOT_OK(Status::OutOfRange("deep"));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<double> Half(double x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return x / 2.0;
}

Result<double> Quarter(double x) {
  double h = 0.0;
  JURY_ASSIGN_OR_RETURN(h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_DOUBLE_EQ(Quarter(8.0).value(), 2.0);
  EXPECT_FALSE(Quarter(-1.0).ok());
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  OnlineStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.Gaussian(2.0, 3.0));
  EXPECT_NEAR(stats.mean(), 2.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(RngTest, TruncatedGaussianRespectsBounds) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.TruncatedGaussian(0.7, 0.5, 0.5, 0.9);
    EXPECT_GE(x, 0.5);
    EXPECT_LE(x, 0.9);
  }
}

TEST(RngTest, BetaInUnitIntervalWithRightMean) {
  Rng rng(31);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.Beta(2.0, 3.0);
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
    stats.Add(x);
  }
  EXPECT_NEAR(stats.mean(), 2.0 / 5.0, 0.01);
}

TEST(RngTest, GammaMeanEqualsShape) {
  Rng rng(37);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gamma(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    auto sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (std::size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  Rng rng(47);
  std::vector<int> counts(5, 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t s : rng.SampleWithoutReplacement(5, 2)) {
      counts[s] += 1;
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.4, 0.02);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(99);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

// ------------------------------------------------------------------ Math

TEST(MathTest, LogOddsRoundTripsThroughSigmoid) {
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    EXPECT_NEAR(Sigmoid(LogOdds(q)), q, 1e-12);
  }
}

TEST(MathTest, LogOddsSignMatchesHalf) {
  EXPECT_GT(LogOdds(0.7), 0.0);
  EXPECT_LT(LogOdds(0.3), 0.0);
  EXPECT_DOUBLE_EQ(LogOdds(0.5), 0.0);
}

TEST(MathTest, LogOddsIsStrictlyIncreasing) {
  double prev = LogOdds(0.01);
  for (double q = 0.02; q < 1.0; q += 0.01) {
    const double cur = LogOdds(q);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(MathTest, LogAddMatchesDirectComputation) {
  EXPECT_NEAR(LogAdd(std::log(0.3), std::log(0.4)), std::log(0.7), 1e-12);
  EXPECT_NEAR(LogAdd(-1000.0, -1000.0), -1000.0 + std::log(2.0), 1e-9);
}

TEST(MathTest, LogSumExpHandlesEmptyAndSingle) {
  EXPECT_EQ(LogSumExp({}), -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(LogSumExp({2.5}), 2.5);
  EXPECT_NEAR(LogSumExp({std::log(1.0), std::log(2.0), std::log(3.0)}),
              std::log(6.0), 1e-12);
}

TEST(MathTest, ClampWorks) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathTest, BinomialCoefficient) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 11), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, -1), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(52, 5), 2598960.0);
}

// ----------------------------------------------------------------- Stats

TEST(StatsTest, OnlineMatchesBatch) {
  Rng rng(53);
  std::vector<double> xs;
  OnlineStats online;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(1.0, 2.0);
    xs.push_back(x);
    online.Add(x);
  }
  EXPECT_NEAR(online.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(online.stddev(), StdDev(xs), 1e-9);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
  OnlineStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
}

TEST(StatsTest, SummarizeFields) {
  Summary s = Summarize({3.0, 1.0, 2.0});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, BinsAndEdges) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);   // bin 0
  h.Add(0.3);   // bin 1
  h.Add(0.55);  // bin 2
  h.Add(0.99);  // bin 3
  h.Add(-1.0);  // clamps into bin 0
  h.Add(2.0);   // clamps into bin 3
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(3), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 0.5);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(RangeCounterTest, MatchesTable3Semantics) {
  // The paper's Table 3 ranges (percent): [0,0.01], (0.01,0.1], (0.1,1],
  // (1,3], (3,+inf).
  RangeCounter counter({0.0, 0.01, 0.1, 1.0, 3.0});
  counter.Add(0.0);    // first
  counter.Add(0.01);   // first (closed)
  counter.Add(0.05);   // second
  counter.Add(0.1);    // second (closed above)
  counter.Add(0.5);    // third
  counter.Add(2.0);    // fourth
  counter.Add(100.0);  // overflow
  EXPECT_EQ(counter.total(), 7u);
  EXPECT_EQ(counter.count(0), 2u);
  EXPECT_EQ(counter.count(1), 2u);
  EXPECT_EQ(counter.count(2), 1u);
  EXPECT_EQ(counter.count(3), 1u);
  EXPECT_EQ(counter.count(4), 1u);
  EXPECT_EQ(counter.label(0), "[0, 0.01]");
  EXPECT_EQ(counter.label(4), "(3, +inf)");
}

TEST(RangeCounterTest, BelowRangeFallsIntoOverflowBucket) {
  // Documented semantics: values below the first edge land in the final
  // catch-all bucket (they cannot occur in Table 3, where gaps are >= 0).
  RangeCounter counter({0.0, 1.0, 2.0});
  counter.Add(-0.5);
  EXPECT_EQ(counter.count(counter.num_buckets() - 1), 1u);
}

// ----------------------------------------------------------------- Table

TEST(TableTest, RendersAlignedColumns) {
  Table t({"Budget", "JQ"});
  t.AddRow({"5", "75.00%"});
  t.AddRow({"10", "80.00%"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Budget"), std::string::npos);
  EXPECT_NE(s.find("80.00%"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"a", "b"});
  t.AddRow({"x,y", "he said \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrips) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  const std::string path = ::testing::TempDir() + "/jury_table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvFailsOnBadPath) {
  Table t({"a"});
  EXPECT_FALSE(t.WriteCsv("/nonexistent-dir/file.csv").ok());
}

TEST(TableTest, FormatHelpers) {
  EXPECT_EQ(Format(0.12345, 3), "0.123");
  EXPECT_EQ(FormatPercent(0.845), "84.50%");
  EXPECT_EQ(FormatPercent(0.845, 1), "84.5%");
}

// ------------------------------------------------------------------- Env

TEST(EnvTest, FallsBackWhenUnset) {
  EXPECT_EQ(GetEnvInt("JURY_TEST_UNSET_VAR", 7), 7);
  EXPECT_DOUBLE_EQ(GetEnvDouble("JURY_TEST_UNSET_VAR", 2.5), 2.5);
  EXPECT_TRUE(GetEnvFlag("JURY_TEST_UNSET_VAR", true));
}

TEST(EnvTest, ParsesSetValues) {
  ::setenv("JURY_TEST_SET_VAR", "42", 1);
  EXPECT_EQ(GetEnvInt("JURY_TEST_SET_VAR", 0), 42);
  ::setenv("JURY_TEST_SET_VAR", "1.5", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("JURY_TEST_SET_VAR", 0.0), 1.5);
  ::setenv("JURY_TEST_SET_VAR", "0", 1);
  EXPECT_FALSE(GetEnvFlag("JURY_TEST_SET_VAR", true));
  ::unsetenv("JURY_TEST_SET_VAR");
}

TEST(EnvTest, RejectsGarbage) {
  ::setenv("JURY_TEST_BAD_VAR", "not-a-number", 1);
  EXPECT_EQ(GetEnvInt("JURY_TEST_BAD_VAR", 5), 5);
  EXPECT_DOUBLE_EQ(GetEnvDouble("JURY_TEST_BAD_VAR", 1.5), 1.5);
  ::unsetenv("JURY_TEST_BAD_VAR");
}

// ----------------------------------------------------------------- Timer

TEST(TimerTest, MeasuresNonNegativeElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), t.ElapsedSeconds());
}

// ------------------------------------------------------------ Json::Parse
//
// Table-form hardening tests for the parser that fronts the fuzzed
// SolveRequest surface. Each rejected row names the error fragment the
// Status must carry, so a regression that swaps one failure mode for
// another (say, overflow becoming saturation) is caught, not just
// "still fails somehow".

struct JsonAcceptCase {
  const char* name;
  const char* input;
  const char* canonical;  // expected Dump() of the parsed document
};

TEST(JsonParseTest, AcceptsAndCanonicalizes) {
  const JsonAcceptCase kCases[] = {
      {"empty_object", "{}", "{}"},
      {"empty_array", "[]", "[]"},
      {"scalars", "[null,true,false]", "[null,true,false]"},
      {"sorted_keys", R"({"b":1,"a":2})", R"({"a":2,"b":1})"},
      {"nested", R"({"a":[1,{"b":[]}]})", R"({"a":[1,{"b":[]}]})"},
      {"whitespace", " { \"a\" : [ 1 , 2 ] } ", R"({"a":[1,2]})"},
      {"zero", "0", "0"},
      {"negative_zero_stays_signed", "-0", "-0"},
      {"int64_min", "-9223372036854775808", "-9223372036854775808"},
      {"uint64_max", "18446744073709551615", "18446744073709551615"},
      {"shortest_double", "0.1", "0.1"},
      {"exponent", "1e3", "1000"},
      // Dump re-escapes \b and \f as \u00XX control escapes; the
      // decoded bytes round-trip either way.
      {"escapes", R"(["\"\\\/\b\f\n\r\t"])",
       R"(["\"\\/\u0008\u000c\n\r\t"])"},
      {"unicode_escape", R"(["é"])", "[\"\xc3\xa9\"]"},
      {"surrogate_pair", R"(["😀"])", "[\"\xf0\x9f\x98\x80\"]"},
      {"raw_utf8", "[\"\xe2\x82\xac\"]", "[\"\xe2\x82\xac\"]"},
  };
  for (const JsonAcceptCase& c : kCases) {
    SCOPED_TRACE(c.name);
    Result<Json> parsed = Json::Parse(c.input);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed.value().Dump(), c.canonical);
    // Canonical form is a fixed point: Dump(Parse(Dump(x))) == Dump(x).
    Result<Json> reparsed = Json::Parse(parsed.value().Dump());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(reparsed.value().Dump(), c.canonical);
  }
}

struct JsonRejectCase {
  const char* name;
  const char* input;
  const char* error_fragment;  // must appear in the Status message
};

TEST(JsonParseTest, RejectsHostileInput) {
  const JsonRejectCase kCases[] = {
      {"empty", "", "unexpected end of input"},
      {"whitespace_only", "  \n\t ", "unexpected end of input"},
      {"trailing_garbage", "{} x", "trailing characters"},
      {"two_documents", "1 2", "trailing characters"},
      {"bad_literal", "truth", "invalid literal"},
      {"truncated_literal", "nul", "invalid literal"},
      {"unterminated_object", R"({"a":1)", "unterminated object"},
      {"missing_colon", R"({"a" 1})", "expected ':' after object key"},
      {"nonstring_key", "{1:2}", "expected object key string"},
      {"unterminated_array", "[1,2", "unterminated array"},
      {"bare_comma", "[1,,2]", "invalid number"},
      {"leading_zero", "01", "leading zeros"},
      {"leading_plus", "+1", "invalid number"},
      {"bare_minus", "-", "invalid number"},
      {"trailing_dot", "1.", "expected digits after decimal point"},
      {"bare_exponent", "1e", "expected digits in exponent"},
      {"int_overflow_pos", "18446744073709551616", "integer overflows"},
      {"int_overflow_neg", "-9223372036854775809", "integer overflows"},
      {"double_overflow", "1e999", "number out of double range"},
      {"nan_is_not_json", "NaN", "invalid number"},
      {"unterminated_string", R"(["abc)", "unterminated string"},
      {"raw_control_char", "[\"a\nb\"]", "unescaped control character"},
      {"bad_escape", R"(["\q"])", "invalid escape character"},
      {"truncated_u_escape", R"(["\u12)", "truncated \\u escape"},
      {"bad_hex_digit", R"(["\u12g4"])", "invalid hex digit"},
      {"lone_high_surrogate", R"(["\ud800"])", "lone high surrogate"},
      {"lone_low_surrogate", R"(["\udc00"])", "lone low surrogate"},
      {"high_surrogate_no_escape", R"(["\ud800A"])", "lone high surrogate"},
      {"bad_surrogate_pair", R"(["\ud800\u0041"])", "invalid low surrogate"},
      {"utf8_stray_continuation", "[\"\x80\"]", "invalid UTF-8 lead byte"},
      {"utf8_truncated", "[\"\xe2\x82", "truncated UTF-8 sequence"},
      {"utf8_bad_continuation", "[\"\xe2\x41\x41\"]",
       "invalid UTF-8 continuation byte"},
  };
  for (const JsonRejectCase& c : kCases) {
    SCOPED_TRACE(c.name);
    Result<Json> parsed = Json::Parse(c.input);
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(parsed.status().message().find(c.error_fragment),
              std::string::npos)
        << "status was: " << parsed.status();
    EXPECT_NE(parsed.status().message().find("at byte"), std::string::npos)
        << "every parse error must name its byte offset: "
        << parsed.status();
  }
}

TEST(JsonParseTest, DepthLimitBoundsRecursion) {
  // 64 levels (the default cap) parse; 65 are rejected, and a custom cap
  // moves the boundary with it.
  const std::string at_limit(64, '[');
  const std::string closed = at_limit + std::string(64, ']');
  EXPECT_TRUE(Json::Parse(closed).ok());
  const std::string over = "[" + closed + "]";
  Result<Json> rejected = Json::Parse(over);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().message().find("nesting deeper than 64"),
            std::string::npos);

  JsonParseOptions shallow;
  shallow.max_depth = 2;
  EXPECT_TRUE(Json::Parse("[[1]]", shallow).ok());
  EXPECT_FALSE(Json::Parse("[[[1]]]", shallow).ok());
}

TEST(JsonParseTest, ReadersAreTotalOnTypeMismatch) {
  Result<Json> parsed = Json::Parse(R"({"s":"x","n":1.5,"u":7,"neg":-1})");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Json& doc = parsed.value();

  EXPECT_EQ(doc.Find("missing"), nullptr);
  EXPECT_EQ(doc.Find("s")->GetArray(), nullptr);
  EXPECT_EQ(doc.Find("s")->GetObject(), nullptr);
  EXPECT_FALSE(doc.Find("s")->GetBool().ok());
  EXPECT_FALSE(doc.Find("s")->GetDouble().ok());
  EXPECT_FALSE(doc.Find("n")->GetString().ok());
  // GetUint64 never truncates a double and never wraps a negative.
  EXPECT_FALSE(doc.Find("n")->GetUint64().ok());
  EXPECT_FALSE(doc.Find("neg")->GetUint64().ok());
  EXPECT_EQ(doc.Find("u")->GetUint64().value(), 7u);
  EXPECT_DOUBLE_EQ(doc.Find("n")->GetDouble().value(), 1.5);
  EXPECT_EQ(doc.Find("s")->GetString().value(), "x");
}

// --------------------------------------------------------- StatsRegistry

TEST(StatsRegistryTest, CounterRegistrationIsIdempotent) {
  StatsRegistry registry;
  StatsRegistry::Counter& a = registry.RegisterCounter("test.counter");
  StatsRegistry::Counter& b = registry.RegisterCounter("test.counter");
  EXPECT_EQ(&a, &b) << "same name must alias the same counter";
  a.Increment();
  b.Add(4);
  EXPECT_EQ(a.value(), 5u);
}

TEST(StatsRegistryTest, SnapshotMergesCountersAndGauges) {
  StatsRegistry registry;
  registry.RegisterCounter("z.counter").Add(3);
  registry.RegisterGauge("a.gauge", [] { return std::uint64_t{42}; });
  const std::map<std::string, std::uint64_t> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot.at("z.counter"), 3u);
  EXPECT_EQ(snapshot.at("a.gauge"), 42u);
}

TEST(StatsRegistryTest, ToJsonIsSortedAndDeterministic) {
  StatsRegistry registry;
  registry.RegisterCounter("b.second").Add(2);
  registry.RegisterCounter("a.first").Add(1);
  registry.RegisterGauge("g.gauge", [] { return std::uint64_t{9}; });
  EXPECT_EQ(registry.ToJson(),
            R"({"counters":{"a.first":1,"b.second":2},"gauges":{"g.gauge":9}})");
  EXPECT_EQ(registry.ToJson(), registry.ToJson());
}

TEST(StatsRegistryTest, GlobalExposesEagerlyRegisteredInstruments) {
  // Process-wide instruments register at static initialization of their
  // defining translation unit, so any binary that links a subsystem
  // exports that subsystem's instruments whether or not the code ran.
  // This test binary links util/json (it parses below), so the json
  // counters must already exist; the full cross-subsystem schema is
  // pinned against jury_cli by scripts/check_stats_schema.py, since only
  // a whole-product binary links every registering object file.
  Result<Json> parsed = Json::Parse(StatsRegistry::Global().ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const Json* counters = parsed.value().Find("counters");
  const Json* gauges = parsed.value().Find("gauges");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(counters->Find("json.documents_parsed"), nullptr);
  EXPECT_NE(counters->Find("json.parse_errors"), nullptr);
}

}  // namespace
}  // namespace jury
