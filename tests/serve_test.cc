// Serving-layer tests: the HTTP parser, the epoch-keyed result cache,
// the cache-key contract on `PoolPlanContext`, pool-epoch bumps via
// `ApplyPoolDelta`, and an end-to-end pass over a live `JuryServer` on
// an ephemeral loopback port.
//
// The central claims:
//  * a cache-hit report is byte-identical (modulo the zeroed wall clock
//    and the `cache_hit` marker) to the cold solve it replays, for any
//    thread count;
//  * distinct (epoch, budget, alpha, solver, tuning, seed) tuples never
//    collide in the cache;
//  * `ApplyPoolDelta` re-plans new requests without failing anything in
//    flight, and rebuilds only the shards it touched;
//  * malformed wire bytes get structured HTTP errors, never an abort.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/solve.h"
#include "gtest/gtest.h"
#include "model/sharded_pool.h"
#include "model/worker.h"
#include "serve/http.h"
#include "serve/result_cache.h"
#include "serve/server.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/stats_registry.h"

namespace jury {
namespace {

using jury::testing::RandomPool;

// ---------------------------------------------------------------------------
// HttpParser

TEST(HttpParserTest, ParsesSimpleGet) {
  serve::HttpParser parser;
  const std::string wire = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(parser.Feed(wire), wire.size());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().target, "/healthz");
  EXPECT_EQ(parser.request().version, "HTTP/1.1");
  EXPECT_EQ(parser.request().headers.at("host"), "x");
  EXPECT_TRUE(parser.request().body.empty());
}

TEST(HttpParserTest, ParsesPostBodyAcrossFeeds) {
  serve::HttpParser parser;
  const std::string wire =
      "POST /solve HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world";
  // Byte-at-a-time delivery must land in the same place.
  for (const char c : wire) {
    ASSERT_EQ(parser.Feed(std::string_view(&c, 1)), 1u);
  }
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "hello world");
}

TEST(HttpParserTest, LeavesPipelinedBytesUnconsumed) {
  serve::HttpParser parser;
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string second = "GET /b HTTP/1.1\r\n\r\n";
  const std::string wire = first + second;
  const std::size_t consumed = parser.Feed(wire);
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(consumed, first.size());
  EXPECT_EQ(parser.request().target, "/a");
  parser.Reset();
  EXPECT_EQ(parser.Feed(std::string_view(wire).substr(consumed)),
            second.size());
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().target, "/b");
}

TEST(HttpParserTest, ToleratesBareLf) {
  serve::HttpParser parser;
  const std::string wire = "GET / HTTP/1.1\nHost: x\n\n";
  parser.Feed(wire);
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().headers.at("host"), "x");
}

TEST(HttpParserTest, RejectsMalformedRequestLine) {
  for (const std::string& wire :
       {std::string("GARBAGE\r\n\r\n"), std::string("GET /\r\n\r\n"),
        std::string("GET / NOTHTTP/1.1\r\n\r\n"),
        std::string(" GET / HTTP/1.1\r\n\r\n")}) {
    serve::HttpParser parser;
    parser.Feed(wire);
    ASSERT_TRUE(parser.failed()) << wire;
    EXPECT_EQ(parser.error_status(), 400) << wire;
  }
}

TEST(HttpParserTest, RejectsBadContentLength) {
  serve::HttpParser parser;
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, EnforcesHeaderLimit) {
  serve::HttpLimits limits;
  limits.max_header_bytes = 64;
  serve::HttpParser parser(limits);
  parser.Feed("GET / HTTP/1.1\r\nX-Big: " + std::string(256, 'a') +
              "\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, EnforcesBodyLimit) {
  serve::HttpLimits limits;
  limits.max_body_bytes = 16;
  serve::HttpParser parser(limits);
  parser.Feed("POST / HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n");
  ASSERT_TRUE(parser.failed());
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, ResetSupportsKeepAlive) {
  serve::HttpParser parser;
  parser.Feed("GET /one HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(parser.complete());
  parser.Reset();
  parser.Feed("POST /two HTTP/1.1\r\nContent-Length: 2\r\n\r\nok");
  ASSERT_TRUE(parser.complete());
  EXPECT_EQ(parser.request().target, "/two");
  EXPECT_EQ(parser.request().body, "ok");
}

// ---------------------------------------------------------------------------
// ResultCache

api::SolveReport FakeReport(const std::string& tag) {
  api::SolveReport report;
  report.solver = tag;
  report.wall_seconds = 1.25;
  report.stats["moves"] = 3.0;
  return report;
}

TEST(ResultCacheTest, MissThenHit) {
  serve::ResultCache cache({.max_entries = 8});
  api::SolveReport out;
  EXPECT_FALSE(cache.Lookup(0, "k", &out));
  cache.Insert(0, "k", FakeReport("optjs"));
  ASSERT_TRUE(cache.Lookup(0, "k", &out));
  EXPECT_EQ(out.solver, "optjs");
  // Wall time is excluded from identity; the hit is marked.
  EXPECT_EQ(out.wall_seconds, 0.0);
  EXPECT_EQ(out.stats.at("cache_hit"), 1.0);
  const serve::ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCacheTest, EpochIsPartOfTheKey) {
  serve::ResultCache cache({.max_entries = 8});
  cache.Insert(0, "k", FakeReport("epoch0"));
  cache.Insert(1, "k", FakeReport("epoch1"));
  api::SolveReport out;
  ASSERT_TRUE(cache.Lookup(0, "k", &out));
  EXPECT_EQ(out.solver, "epoch0");
  ASSERT_TRUE(cache.Lookup(1, "k", &out));
  EXPECT_EQ(out.solver, "epoch1");
  // The composite key is prefix-free: (1, "1\nk") must not alias (11, "k").
  cache.Insert(11, "k", FakeReport("epoch11"));
  EXPECT_FALSE(cache.Lookup(1, "1\nk", &out));
}

TEST(ResultCacheTest, LruEvictsOldest) {
  serve::ResultCache cache({.max_entries = 2});
  cache.Insert(0, "a", FakeReport("a"));
  cache.Insert(0, "b", FakeReport("b"));
  api::SolveReport out;
  ASSERT_TRUE(cache.Lookup(0, "a", &out));  // refresh "a"
  cache.Insert(0, "c", FakeReport("c"));    // evicts "b", the LRU entry
  EXPECT_FALSE(cache.Lookup(0, "b", &out));
  EXPECT_TRUE(cache.Lookup(0, "a", &out));
  EXPECT_TRUE(cache.Lookup(0, "c", &out));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCacheTest, InvalidateBeforeDropsStaleEpochs) {
  serve::ResultCache cache({.max_entries = 8});
  cache.Insert(0, "a", FakeReport("a"));
  cache.Insert(1, "b", FakeReport("b"));
  cache.Insert(2, "c", FakeReport("c"));
  cache.InvalidateBefore(2);
  api::SolveReport out;
  EXPECT_FALSE(cache.Lookup(0, "a", &out));
  EXPECT_FALSE(cache.Lookup(1, "b", &out));
  EXPECT_TRUE(cache.Lookup(2, "c", &out));
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesInsertion) {
  serve::ResultCache cache({.max_entries = 0});
  cache.Insert(0, "k", FakeReport("x"));
  api::SolveReport out;
  EXPECT_FALSE(cache.Lookup(0, "k", &out));
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Cache-key contract on PoolPlanContext

std::vector<Worker> TestPool(int n = 24) {
  Rng rng(20150323);
  return RandomPool(&rng, n, 0.55, 0.9, 0.05, 0.6);
}

api::SolveRequest BaseRequest(double budget = 1.5) {
  api::SolveRequest request;
  request.solver = "optjs";
  request.budget = budget;
  request.alpha = 0.4;
  return request;
}

/// The byte-identity contract of a hit: the cold report with its wall
/// clock zeroed and `cache_hit` added must serialize to the hit's bytes.
void ExpectHitReplaysCold(const api::SolveReport& cold,
                          const api::SolveReport& hit) {
  api::SolveReport expected = cold;
  expected.wall_seconds = 0.0;
  expected.stats["cache_hit"] = 1.0;
  EXPECT_EQ(expected.ToJson(), hit.ToJson());
}

TEST(ContextCacheTest, HitIsByteIdenticalToColdSolve) {
  for (const std::size_t num_threads : {std::size_t{1}, std::size_t{8}}) {
    auto planned = api::PoolPlanContext::Plan(TestPool());
    ASSERT_TRUE(planned.ok());
    api::PoolPlanContext context = std::move(planned).value();
    context.EnableResultCache();

    const api::SolveRequest request = BaseRequest();
    // Cold and hit both go through the batched path at `num_threads`.
    auto cold = context.SolveMany({&request, 1}, num_threads);
    ASSERT_TRUE(cold.ok());
    auto hit = context.SolveMany({&request, 1}, num_threads);
    ASSERT_TRUE(hit.ok());
    ASSERT_EQ(context.result_cache()->stats().hits, 1u);
    ExpectHitReplaysCold(cold.value()[0], hit.value()[0]);
  }
}

TEST(ContextCacheTest, DistinctTuplesNeverCollide) {
  auto planned = api::PoolPlanContext::Plan(TestPool());
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  context.EnableResultCache();

  // One request per varied key dimension: budget, alpha, solver, tuning,
  // seed, work cap. All must miss on the first pass (no collisions)...
  std::vector<api::SolveRequest> requests;
  requests.push_back(BaseRequest());
  requests.push_back(BaseRequest(2.0));
  api::SolveRequest alpha = BaseRequest();
  alpha.alpha = 0.6;
  requests.push_back(alpha);
  api::SolveRequest solver = BaseRequest();
  solver.solver = "greedy-value";
  requests.push_back(solver);
  api::SolveRequest tuned = BaseRequest();
  tuned.tuning.optjs.bucket.num_buckets = 32;
  requests.push_back(tuned);
  api::SolveRequest seeded = BaseRequest();
  seeded.solver = "annealing";
  seeded.rng_seed = 7;
  requests.push_back(seeded);
  api::SolveRequest capped = BaseRequest();
  capped.solver = "annealing";
  capped.max_work_units = 50;
  requests.push_back(capped);

  std::vector<api::SolveReport> cold;
  for (const api::SolveRequest& request : requests) {
    auto report = context.Solve(request);
    ASSERT_TRUE(report.ok());
    cold.push_back(report.value());
  }
  const serve::ResultCacheStats after_cold = context.result_cache()->stats();
  EXPECT_EQ(after_cold.hits, 0u);
  EXPECT_EQ(after_cold.insertions, requests.size());

  // ...and each repeat must replay exactly its own cold report.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto report = context.Solve(requests[i]);
    ASSERT_TRUE(report.ok());
    ExpectHitReplaysCold(cold[i], report.value());
  }
  EXPECT_EQ(context.result_cache()->stats().hits, requests.size());
}

TEST(ContextCacheTest, NonDeterministicRequestsBypassTheCache) {
  auto planned = api::PoolPlanContext::Plan(TestPool());
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  context.EnableResultCache();

  api::SolveRequest deadline = BaseRequest();
  deadline.deadline_ms = 10'000.0;
  ASSERT_TRUE(context.Solve(deadline).ok());
  ASSERT_TRUE(context.Solve(deadline).ok());

  api::SolveRequest stats_collecting = BaseRequest();
  stats_collecting.collect_process_stats = true;
  ASSERT_TRUE(context.Solve(stats_collecting).ok());

  const serve::ResultCacheStats stats = context.result_cache()->stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(context.result_cache()->size(), 0u);
}

// ---------------------------------------------------------------------------
// ApplyPoolDelta: epochs, cache keying, shard rebuilds, in-flight safety

TEST(PoolDeltaTest, BumpsEpochAndReplans) {
  auto planned = api::PoolPlanContext::Plan(TestPool());
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  context.EnableResultCache();
  EXPECT_EQ(context.pool_epoch(), 0u);

  const api::SolveRequest request = BaseRequest();
  auto before = context.Solve(request);
  ASSERT_TRUE(before.ok());

  // Make the cheapest worker dramatically better; the re-planned pool
  // must produce a (generally different) jury under the same request.
  const api::PoolDeltaUpdate update{0, 0.95, 0.01};
  ASSERT_TRUE(context.ApplyPoolDelta({&update, 1}).ok());
  EXPECT_EQ(context.pool_epoch(), 1u);
  EXPECT_EQ(context.candidates()[0].quality, 0.95);
  EXPECT_EQ(context.view().quality()[0], 0.95);

  // The old epoch's entry is stale for new traffic: the same request
  // misses and re-solves against the new pool.
  const serve::ResultCacheStats before_stats = context.result_cache()->stats();
  auto after = context.Solve(request);
  ASSERT_TRUE(after.ok());
  const serve::ResultCacheStats after_stats = context.result_cache()->stats();
  EXPECT_EQ(after_stats.hits, before_stats.hits);
  EXPECT_EQ(after_stats.misses, before_stats.misses + 1);
  EXPECT_EQ(context.result_cache()->size(), 2u);  // one entry per epoch
}

TEST(PoolDeltaTest, RejectsBadUpdatesAtomically) {
  auto planned = api::PoolPlanContext::Plan(TestPool());
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();

  const api::PoolDeltaUpdate out_of_range{10'000, 0.9, 0.1};
  EXPECT_EQ(context.ApplyPoolDelta({&out_of_range, 1}).code(),
            StatusCode::kInvalidArgument);
  const api::PoolDeltaUpdate bad_quality{0, 2.0, 0.1};
  EXPECT_EQ(context.ApplyPoolDelta({&bad_quality, 1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(context.pool_epoch(), 0u);
}

TEST(PoolDeltaTest, RebuildsOnlyTouchedShards) {
  // 64 workers at shard_size 16 -> 4 shards.
  api::PlanOptions plan_options;
  plan_options.shard_size = 16;
  auto planned = api::PoolPlanContext::Plan(TestPool(64), plan_options);
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();
  ASSERT_NE(context.sharded_pool(), nullptr);  // force the lazy build
  ASSERT_EQ(context.sharded_pool()->num_shards(), 4u);

  StatsRegistry::Counter& rebuilds =
      RegisterStatsCounter("pool.shard_rebuilds");
  const std::uint64_t before = rebuilds.value();
  // Two updates inside one shard: exactly one shard rebuild.
  const api::PoolDeltaUpdate updates[] = {{1, 0.8, 0.2}, {2, 0.7, 0.3}};
  ASSERT_TRUE(context.ApplyPoolDelta({updates, 2}).ok());
  EXPECT_EQ(rebuilds.value(), before + 1);
  // And an update in a different shard rebuilds just that one.
  const api::PoolDeltaUpdate far{60, 0.8, 0.2};
  ASSERT_TRUE(context.ApplyPoolDelta({&far, 1}).ok());
  EXPECT_EQ(rebuilds.value(), before + 2);
}

TEST(PoolDeltaTest, InFlightSolvesSurviveChurn) {
  auto planned = api::PoolPlanContext::Plan(TestPool(48));
  ASSERT_TRUE(planned.ok());
  api::PoolPlanContext context = std::move(planned).value();

  // A batch of annealing requests (slow enough to still be in flight
  // when the delta lands), submitted async...
  std::vector<api::SolveRequest> requests;
  for (int i = 0; i < 6; ++i) {
    api::SolveRequest request = BaseRequest(1.0 + 0.1 * i);
    request.solver = "annealing";
    request.rng_seed = 100 + static_cast<std::uint64_t>(i);
    requests.push_back(request);
  }
  // Reference reports, solved entirely before any churn (wall time
  // zeroed: it is the one legitimately timing-dependent field).
  const auto canonical = [](api::SolveReport report) {
    report.wall_seconds = 0.0;
    return report.ToJson();
  };
  std::vector<std::string> expected;
  for (const api::SolveRequest& request : requests) {
    auto report = context.Solve(request);
    ASSERT_TRUE(report.ok());
    expected.push_back(canonical(report.value()));
  }

  api::SubmitOptions submit;
  submit.num_threads = 4;
  std::vector<api::SolveFuture> futures = context.SubmitMany(requests, submit);
  // Churn lands while the batch runs. In-flight requests keep their
  // leased epoch: every future must succeed AND match the pre-churn
  // reports bit for bit.
  const api::PoolDeltaUpdate update{0, 0.93, 0.02};
  ASSERT_TRUE(context.ApplyPoolDelta({&update, 1}).ok());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    auto report = futures[i].Take();
    ASSERT_TRUE(report.ok()) << "in-flight request " << i
                             << " failed across churn: " << report.status();
    EXPECT_EQ(canonical(report.value()), expected[i]) << "request " << i;
  }
  // New submissions see the new epoch.
  EXPECT_EQ(context.pool_epoch(), 1u);
  auto fresh = context.Solve(requests[0]);
  ASSERT_TRUE(fresh.ok());
}

// ---------------------------------------------------------------------------
// JuryServer end to end

class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  /// One round trip; returns the raw status line + body.
  std::pair<int, std::string> RoundTrip(const std::string& method,
                                        const std::string& target,
                                        const std::string& body = "") {
    std::string request = method + " " + target + " HTTP/1.1\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
    request += body;
    if (::send(fd_, request.data(), request.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(request.size())) {
      return {0, ""};
    }
    std::string response;
    char chunk[4096];
    std::size_t header_end = std::string::npos;
    while (header_end == std::string::npos) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return {0, response};
      response.append(chunk, static_cast<std::size_t>(n));
      header_end = response.find("\r\n\r\n");
    }
    const std::size_t length_at = response.find("Content-Length: ");
    std::size_t content_length = 0;
    if (length_at != std::string::npos && length_at < header_end) {
      content_length =
          std::strtoull(response.c_str() + length_at + 16, nullptr, 10);
    }
    while (response.size() - header_end - 4 < content_length) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      response.append(chunk, static_cast<std::size_t>(n));
    }
    const int status = std::atoi(response.c_str() + 9);
    return {status, response.substr(header_end + 4)};
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

class JuryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto planned = api::PoolPlanContext::Plan(TestPool());
    ASSERT_TRUE(planned.ok());
    context_.emplace(std::move(planned).value());
    serve::ServeOptions options;
    options.max_inflight = 8;
    server_.emplace(&*context_, options);
    ASSERT_TRUE(server_->Start().ok());
    thread_ = std::thread([this] { EXPECT_TRUE(server_->Run().ok()); });
  }
  void TearDown() override {
    server_->Shutdown();
    thread_.join();
  }

  std::optional<api::PoolPlanContext> context_;
  std::optional<serve::JuryServer> server_;
  std::thread thread_;
};

TEST_F(JuryServerTest, HealthzAndStats) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  auto [health_status, health_body] = client.RoundTrip("GET", "/healthz");
  EXPECT_EQ(health_status, 200);
  EXPECT_EQ(health_body, "{\"ok\":true}");
  auto [stats_status, stats_body] = client.RoundTrip("GET", "/stats");
  EXPECT_EQ(stats_status, 200);
  EXPECT_NE(stats_body.find("\"serve.requests\""), std::string::npos);
  EXPECT_NE(stats_body.find("\"pool_epoch\":0"), std::string::npos);
}

TEST_F(JuryServerTest, SolvesAndCachesOverHttp) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const std::string body = BaseRequest().ToJson();
  auto [cold_status, cold_body] = client.RoundTrip("POST", "/solve", body);
  EXPECT_EQ(cold_status, 200);
  EXPECT_NE(cold_body.find("\"solution\""), std::string::npos);
  auto [hit_status, hit_body] = client.RoundTrip("POST", "/solve", body);
  EXPECT_EQ(hit_status, 200);
  EXPECT_NE(hit_body.find("\"cache_hit\":1"), std::string::npos);
}

TEST_F(JuryServerTest, StructuredErrorsNeverKillTheProcess) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  auto [parse_status, parse_body] =
      client.RoundTrip("POST", "/solve", "this is not json");
  EXPECT_EQ(parse_status, 400);
  EXPECT_NE(parse_body.find("\"error\""), std::string::npos);
  auto [solver_status, solver_body] = client.RoundTrip(
      "POST", "/solve", "{\"solver\":\"no-such-solver\",\"budget\":1.0}");
  EXPECT_EQ(solver_status, 404);
  EXPECT_NE(solver_body.find("\"error\""), std::string::npos);
  auto [route_status, route_body] = client.RoundTrip("GET", "/nope");
  EXPECT_EQ(route_status, 404);
  auto [method_status, method_body] = client.RoundTrip("DELETE", "/solve");
  EXPECT_EQ(method_status, 405);
  // The server is still healthy after the abuse.
  auto [health_status, health_body] = client.RoundTrip("GET", "/healthz");
  EXPECT_EQ(health_status, 200);
}

TEST_F(JuryServerTest, EpochBumpMidStreamKeepsServing) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  const std::string body = BaseRequest().ToJson();
  auto [first_status, first_body] = client.RoundTrip("POST", "/solve", body);
  EXPECT_EQ(first_status, 200);

  const api::PoolDeltaUpdate update{0, 0.95, 0.01};
  ASSERT_TRUE(context_->ApplyPoolDelta({&update, 1}).ok());

  auto [second_status, second_body] = client.RoundTrip("POST", "/solve", body);
  EXPECT_EQ(second_status, 200);
  // The re-solve ran against the new epoch, not the cached old-epoch
  // entry.
  EXPECT_EQ(second_body.find("\"cache_hit\""), std::string::npos);
  auto [stats_status, stats_body] = client.RoundTrip("GET", "/stats");
  EXPECT_NE(stats_body.find("\"pool_epoch\":1"), std::string::npos);
}

}  // namespace
}  // namespace jury
