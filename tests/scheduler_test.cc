#include "util/scheduler.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace jury {
namespace {

TEST(SchedulerTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 5u}) {
    Scheduler scheduler(threads);
    for (std::size_t n : {0u, 1u, 7u, 64u, 1000u}) {
      for (std::size_t grain : {1u, 3u, 64u, 2000u}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto& h : hits) h.store(0);
        scheduler.ParallelFor(0, n, grain,
                              [&](std::size_t begin, std::size_t end) {
                                ASSERT_LE(begin, end);
                                ASSERT_LE(end, n);
                                for (std::size_t i = begin; i < end; ++i) {
                                  hits[i].fetch_add(1);
                                }
                              });
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[i].load(), 1)
              << "threads=" << threads << " n=" << n << " grain=" << grain
              << " i=" << i;
        }
      }
    }
  }
}

TEST(SchedulerTest, ShardBoundariesAreAPureFunctionOfGrain) {
  // The determinism contract: every callback starts at begin + k*grain,
  // whatever the scheduler size or parallelism cap.
  for (std::size_t threads : {1u, 4u}) {
    Scheduler scheduler(threads);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> shards;
    scheduler.ParallelFor(10, 55, 10,
                          [&](std::size_t begin, std::size_t end) {
                            std::lock_guard<std::mutex> lock(mu);
                            shards.emplace(begin, end);
                          });
    const std::set<std::pair<std::size_t, std::size_t>> expected{
        {10, 20}, {20, 30}, {30, 40}, {40, 50}, {50, 55}};
    EXPECT_EQ(shards, expected) << "threads=" << threads;
  }
}

TEST(SchedulerTest, MaxParallelismOneRunsInline) {
  Scheduler scheduler(4);
  const auto caller = std::this_thread::get_id();
  scheduler.ResetCounters();
  scheduler.ParallelFor(
      0, 100, 10,
      [&](std::size_t, std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
      },
      /*max_parallelism=*/1);
  const SchedulerCounters counters = scheduler.counters();
  EXPECT_EQ(counters.regions, 0u);
  EXPECT_GT(counters.inline_regions, 0u);
  EXPECT_EQ(counters.tasks_spawned, 0u);
}

TEST(SchedulerTest, NestedRegionsCoverAndCount) {
  Scheduler scheduler(4);
  scheduler.ResetCounters();
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 32;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  for (auto& h : hits) h.store(0);
  scheduler.ParallelFor(0, kOuter, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      // A region from inside a task: its shards are stealable subtasks.
      scheduler.ParallelFor(0, kInner, 4,
                            [&](std::size_t ib, std::size_t ie) {
                              for (std::size_t i = ib; i < ie; ++i) {
                                hits[o * kInner + i].fetch_add(1);
                              }
                            });
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "i=" << i;
  }
  const SchedulerCounters counters = scheduler.counters();
  EXPECT_GT(counters.regions, 0u);
  EXPECT_GT(counters.nested_regions, 0u);
}

TEST(SchedulerTest, WorkIsActuallyStolen) {
  // A task spawns a subtask onto its own deque, then spins until another
  // worker has stolen and run it — it never helps, so completion proves a
  // steal happened (liveness only; no timing assumptions).
  Scheduler scheduler(3);
  scheduler.ResetCounters();
  std::atomic<bool> stolen_ran{false};
  TaskGroup outer(&scheduler);
  outer.Run([&] {
    TaskGroup inner(&scheduler);
    inner.Run([&] { stolen_ran.store(true); });
    while (!stolen_ran.load()) std::this_thread::yield();
    inner.Wait();
  });
  // Don't call Wait() (which would help) until the steal happened: the
  // outer task must be picked up by a worker, so its subtask lands on
  // that worker's deque and only a *steal* can run it.
  while (!stolen_ran.load()) std::this_thread::yield();
  outer.Wait();
  EXPECT_TRUE(stolen_ran.load());
  EXPECT_GE(scheduler.counters().tasks_stolen, 1u);
}

TEST(SchedulerTest, TaskGroupPropagatesFirstException) {
  Scheduler scheduler(4);
  TaskGroup group(&scheduler);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    group.Run([&, i] {
      ran.fetch_add(1);
      if (i % 4 == 0) throw std::runtime_error("task failed");
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 16);  // every task still finished
  // The scheduler stays usable after an exception.
  std::atomic<int> after{0};
  scheduler.ParallelFor(0, 8, 1, [&](std::size_t b, std::size_t e) {
    after.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(after.load(), 8);
}

TEST(SchedulerTest, ParallelForRethrowsBodyException) {
  Scheduler scheduler(4);
  EXPECT_THROW(
      scheduler.ParallelFor(0, 64, 1,
                            [&](std::size_t b, std::size_t) {
                              if (b == 7) throw std::runtime_error("shard");
                            }),
      std::runtime_error);
}

TEST(SchedulerTest, ShutdownWhileBusyDrainsEveryTask) {
  std::atomic<int> done{0};
  constexpr int kTasks = 64;
  {
    auto scheduler = std::make_unique<Scheduler>(4);
    TaskGroup group(scheduler.get());
    for (int i = 0; i < kTasks; ++i) {
      group.Run([&] {
        std::this_thread::yield();
        done.fetch_add(1);
      });
    }
    // Destroy the scheduler with the group still in flight: the destructor
    // must finish every spawned task before the group (destroyed after,
    // waiting on completion) can unwind.
    scheduler.reset();
    group.Wait();
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(SchedulerTest, StressNestedGroupsUnderChurn) {
  // Many concurrent nested groups — the TSAN target for the deque, the
  // injection queue, and the group completion protocol.
  Scheduler scheduler(4);
  std::atomic<int> total{0};
  scheduler.ParallelFor(0, 16, 1, [&](std::size_t b, std::size_t e) {
    for (std::size_t o = b; o < e; ++o) {
      TaskGroup group(&scheduler);
      for (int i = 0; i < 8; ++i) {
        group.Run([&] { total.fetch_add(1); });
      }
      group.Wait();
    }
  });
  EXPECT_EQ(total.load(), 16 * 8);
}

TEST(SchedulerTest, ManyRegionsReuseTheSchedulerCleanly) {
  Scheduler scheduler(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    scheduler.ParallelFor(0, 32, 4, [&](std::size_t b, std::size_t e) {
      total.fetch_add(e - b);
    });
  }
  EXPECT_EQ(total.load(), 200u * 32u);
}

TEST(GrainTunerTest, PicksOneShardPerThreadWithoutFeedback) {
  GrainTuner tuner;
  EXPECT_EQ(tuner.Pick(100, 4), 25u);
  EXPECT_EQ(tuner.Pick(3, 4), 1u);
  EXPECT_EQ(tuner.Pick(0, 4), 1u);
}

TEST(GrainTunerTest, FeedbackSteersTowardTargetWithinBounds) {
  GrainTuner tuner(/*min_grain=*/4, /*target_shard_ns=*/1000);
  // 10 ns per item -> ~100 items per shard, clamped to count/parallelism.
  for (int i = 0; i < 8; ++i) tuner.Record(100, 1000);
  EXPECT_GT(tuner.ema_ns_per_item_x1024(), 0u);
  const std::size_t grain = tuner.Pick(10000, 4);
  EXPECT_GE(grain, 4u);
  EXPECT_LE(grain, 10000u / 4u);
  // Expensive items shrink the grain to the floor, never below it.
  for (int i = 0; i < 32; ++i) tuner.Record(1, 1000000);
  EXPECT_EQ(tuner.Pick(10000, 4), 4u);
  // The grain never exceeds count / parallelism, so no thread idles by
  // construction even when items are measured as nearly free.
  for (int i = 0; i < 64; ++i) tuner.Record(100000, 1);
  EXPECT_LE(tuner.Pick(64, 4), 16u);
}

TEST(GrainTunerTest, TunedLoopCoversAllElements) {
  Scheduler scheduler(4);
  GrainTuner tuner(/*min_grain=*/2);
  std::vector<std::atomic<int>> hits(500);
  for (int round = 0; round < 5; ++round) {
    for (auto& h : hits) h.store(0);
    scheduler.ParallelForTuned(&tuner, 0, hits.size(),
                               [&](std::size_t b, std::size_t e) {
                                 for (std::size_t i = b; i < e; ++i) {
                                   hits[i].fetch_add(1);
                                 }
                               });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round=" << round << " i=" << i;
    }
  }
}

TEST(SchedulerTest, GlobalIsSharedAndSizedByBudget) {
  Scheduler* global = Scheduler::Global();
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global, Scheduler::Global());
  // JURYOPT_THREADS at process start is a whole-process budget and sizes
  // the pool exactly (the TSAN CI job runs this binary with it set to 4);
  // without it the pool is at least 8 so post-startup JURYOPT_THREADS
  // dispatch on small machines still runs multi-threaded. The env var may
  // have been set after the pool was created, in which case only the
  // floor holds.
  const char* env = std::getenv("JURYOPT_THREADS");
  if (env != nullptr && std::atoi(env) > 0) {
    EXPECT_GE(global->num_threads(), 1u);
  } else {
    EXPECT_GE(global->num_threads(), 8u);
  }
}

}  // namespace
}  // namespace jury
