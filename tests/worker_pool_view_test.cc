// Tests for the columnar worker-pool view: column values must equal the
// per-worker expressions the evaluation backends run (bit-for-bit, since
// sessions substitute the columns for the struct reads), and the id map
// must resolve like a linear scan.

#include <vector>

#include "gtest/gtest.h"
#include "model/worker_pool_view.h"
#include "test_util.h"
#include "util/math.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::Figure1Workers;
using jury::testing::RandomPool;

TEST(WorkerPoolViewTest, ColumnsMatchStructFields) {
  Rng rng(5501);
  const std::vector<Worker> pool = RandomPool(&rng, 64, 0.0, 1.0, 0.0, 2.0);
  const WorkerPoolView view(pool);
  ASSERT_EQ(view.size(), pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    EXPECT_EQ(view.quality()[i], pool[i].quality) << i;
    EXPECT_EQ(view.cost()[i], pool[i].cost) << i;
    EXPECT_EQ(&view.worker(i), &pool[i]) << "non-owning span aliasing";
  }
}

TEST(WorkerPoolViewTest, DerivedColumnsAreBackendExpressionsVerbatim) {
  // The bucket backend buckets by LogOdds(EffectiveQuality(norm_q)); the
  // columns must hold exactly those doubles or column-sourced scores
  // would drift from struct-sourced ones.
  Rng rng(5503);
  std::vector<Worker> pool = RandomPool(&rng, 40, 0.0, 1.0, 0.0, 1.0);
  pool.push_back(Worker("half", 0.5, 0.0));
  pool.push_back(Worker("zero", 0.0, 0.0));
  pool.push_back(Worker("one", 1.0, 0.0));
  const WorkerPoolView view(pool);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const double norm = NormalizedQuality(pool[i].quality);
    EXPECT_EQ(view.norm_quality()[i], norm) << i;
    EXPECT_GE(view.norm_quality()[i], 0.5) << i;
    EXPECT_EQ(view.log_odds()[i], LogOdds(EffectiveQuality(norm))) << i;
  }
}

TEST(WorkerPoolViewTest, IdMapResolvesFirstOccurrence) {
  std::vector<Worker> pool = Figure1Workers();
  pool.push_back(Worker("C", 0.99, 1.0));  // duplicate id, later index
  const WorkerPoolView view(pool);
  EXPECT_EQ(view.IndexOf("A"), 0u);
  EXPECT_EQ(view.IndexOf("G"), 6u);
  EXPECT_EQ(view.IndexOf("C"), 2u) << "first occurrence wins";
  EXPECT_EQ(view.IndexOf("nope"), WorkerPoolView::kNotFound);
}

TEST(WorkerPoolViewTest, EmptyPool) {
  const WorkerPoolView view{std::span<const Worker>{}};
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.size(), 0u);
  EXPECT_EQ(view.IndexOf("x"), WorkerPoolView::kNotFound);
}

}  // namespace
}  // namespace jury
