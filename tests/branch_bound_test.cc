#include <tuple>

#include "gtest/gtest.h"
#include "core/branch_bound.h"
#include "core/exhaustive.h"
#include "core/objective.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::Figure1Workers;
using jury::testing::RandomPool;

JspInstance MakeInstance(std::vector<Worker> workers, double budget,
                         double alpha = 0.5) {
  JspInstance instance;
  instance.candidates = std::move(workers);
  instance.budget = budget;
  instance.alpha = alpha;
  return instance;
}

class BranchBoundAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(BranchBoundAgreementTest, MatchesExhaustiveExactly) {
  const auto [n, budget, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7001 +
          static_cast<std::uint64_t>(n));
  const auto instance = MakeInstance(
      RandomPool(&rng, n, 0.5, 0.95, 0.05, 0.4), budget);
  const ExactBvObjective objective;
  const auto exhaustive = SolveExhaustive(instance, objective).value();
  const auto bb = SolveBranchAndBound(instance, objective).value();
  EXPECT_NEAR(bb.jq, exhaustive.jq, 1e-10);
  // Note: at numerically-equal JQ the two exact solvers may return
  // different juries — the exhaustive sweep only visits maximal juries
  // (Lemma 1), while branch-and-bound may find a cheaper non-maximal tie.
  EXPECT_LE(bb.cost, exhaustive.cost + 1e-10);
  EXPECT_LE(bb.cost, instance.budget + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BranchBoundAgreementTest,
    ::testing::Combine(::testing::Values(4, 8, 12),
                       ::testing::Values(0.2, 0.5, 1.0),
                       ::testing::Values(1, 2, 3)));

TEST(BranchBoundTest, SolvesFigure1) {
  const ExactBvObjective objective;
  const auto instance = MakeInstance(Figure1Workers(), 15.0);
  const auto solution = SolveBranchAndBound(instance, objective).value();
  EXPECT_EQ(solution.selected, (std::vector<std::size_t>{1, 2, 6}));
  EXPECT_NEAR(solution.jq, 0.845, 1e-9);
}

TEST(BranchBoundTest, ScalesBeyondTheExhaustiveGuard) {
  // N = 26 is past SolveExhaustive's default cap; branch-and-bound with the
  // bucket objective finishes and prunes most of the tree.
  Rng rng(11);
  const auto instance = MakeInstance(
      RandomPool(&rng, 26, 0.5, 0.95, 0.05, 0.4), 0.4);
  const BucketBvObjective objective;
  BranchBoundStats stats;
  const auto solution =
      SolveBranchAndBound(instance, objective, {}, &stats).value();
  EXPECT_LE(solution.cost, instance.budget + 1e-12);
  EXPECT_GT(stats.nodes_pruned_bound + stats.nodes_pruned_budget, 0u);
  EXPECT_LT(stats.nodes_explored, (1u << 26));
}

TEST(BranchBoundTest, RejectsNonMonotoneObjectives) {
  const MajorityObjective mv;
  const auto instance = MakeInstance(Figure1Workers(), 10.0);
  EXPECT_EQ(SolveBranchAndBound(instance, mv).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BranchBoundTest, NodeBudgetIsEnforced) {
  Rng rng(13);
  const auto instance = MakeInstance(
      RandomPool(&rng, 18, 0.5, 0.95, 0.05, 0.4), 1.0);
  const ExactBvObjective objective;
  BranchBoundOptions options;
  options.max_nodes = 5;
  EXPECT_EQ(
      SolveBranchAndBound(instance, objective, options).status().code(),
      StatusCode::kResourceExhausted);
}

TEST(BranchBoundTest, EmptyPoolAndZeroBudget) {
  const ExactBvObjective objective;
  const auto empty = MakeInstance({}, 1.0, 0.7);
  const auto s1 = SolveBranchAndBound(empty, objective).value();
  EXPECT_TRUE(s1.selected.empty());
  EXPECT_DOUBLE_EQ(s1.jq, 0.7);

  Rng rng(17);
  const auto broke =
      MakeInstance(RandomPool(&rng, 6, 0.5, 0.9, 0.5, 1.0), 0.0);
  const auto s2 = SolveBranchAndBound(broke, objective).value();
  EXPECT_TRUE(s2.selected.empty());
}

TEST(BranchBoundTest, PrefersCheaperTies) {
  // Two equal-quality workers at different prices; only one fits the
  // quality need — the optimum should keep the cost minimal among ties.
  std::vector<Worker> workers = {{"cheap", 0.8, 1.0}, {"pricey", 0.8, 3.0}};
  const ExactBvObjective objective;
  const auto instance = MakeInstance(std::move(workers), 3.0);
  const auto solution = SolveBranchAndBound(instance, objective).value();
  ASSERT_EQ(solution.selected.size(), 1u);
  EXPECT_EQ(solution.selected[0], 0u);
  EXPECT_DOUBLE_EQ(solution.cost, 1.0);
}

}  // namespace
}  // namespace jury
