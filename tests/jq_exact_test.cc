#include <memory>
#include <tuple>

#include "gtest/gtest.h"
#include "jq/exact.h"
#include "jq/monte_carlo.h"
#include "strategy/registry.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::Figure2Jury;
using jury::testing::RandomJury;

// ------------------------------------------- Paper's worked examples

TEST(ExactJqTest, Example2MajorityVoting) {
  // Example 2 / Fig. 2: qualities (0.9, 0.6, 0.6), alpha = 0.5:
  // JQ(J, MV, 0.5) = 79.2%.
  auto mv = MakeStrategy("MV").value();
  EXPECT_NEAR(ExactJq(Figure2Jury(), *mv, 0.5).value(), 0.792, 1e-12);
}

TEST(ExactJqTest, Example3BayesianVoting) {
  // Example 3: same jury, JQ(J, BV, 0.5) = 90% — BV just follows the
  // 0.9-quality worker because phi(0.9) > phi(0.6) + phi(0.6).
  EXPECT_NEAR(ExactJqBv(Figure2Jury(), 0.5).value(), 0.9, 1e-12);
}

TEST(ExactJqTest, IntroductionJuryBEF) {
  // §1: workers B(0.7), E(0.6), F(0.6) under MV give 69.6%.
  auto mv = MakeStrategy("MV").value();
  const Jury jury = Jury::FromQualities({0.7, 0.6, 0.6});
  EXPECT_NEAR(ExactJq(jury, *mv, 0.5).value(), 0.696, 1e-12);
}

// ------------------------------------------------- Structural checks

TEST(ExactJqTest, SingleWorkerBvEqualsQuality) {
  for (double q : {0.5, 0.6, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(ExactJqBv(Jury::FromQualities({q}), 0.5).value(), q, 1e-12);
  }
}

TEST(ExactJqTest, SingleLowQualityWorkerBvEqualsFlippedQuality) {
  // §3.3: a q < 0.5 worker is as useful as a 1-q worker with flipped votes.
  EXPECT_NEAR(ExactJqBv(Jury::FromQualities({0.2}), 0.5).value(), 0.8, 1e-12);
}

TEST(ExactJqTest, RejectsEmptyJuryAndBadAlpha) {
  auto bv = MakeStrategy("BV").value();
  EXPECT_EQ(ExactJq(Jury(), *bv, 0.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ExactJq(Figure2Jury(), *bv, 1.5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ExactJqTest, GuardsLargeJuries) {
  const Jury big = Jury::FromQualities(std::vector<double>(26, 0.7));
  auto bv = MakeStrategy("BV").value();
  EXPECT_EQ(ExactJq(big, *bv, 0.5).status().code(), StatusCode::kOutOfRange);
}

TEST(ExactJqTest, JqIsAProbability) {
  Rng rng(3);
  const auto strategies = MakeAllStrategies();
  for (int trial = 0; trial < 40; ++trial) {
    const Jury jury = RandomJury(&rng, 1 + static_cast<int>(rng.UniformInt(6)),
                                 0.3, 0.99);
    const double alpha = rng.Uniform();
    for (const auto& s : strategies) {
      const double jq = ExactJq(jury, *s, alpha).value();
      EXPECT_GE(jq, 0.0) << s->name();
      EXPECT_LE(jq, 1.0 + 1e-12) << s->name();
    }
  }
}

TEST(ExactJqTest, PermutationInvariant) {
  auto bv = MakeStrategy("BV").value();
  const Jury a = Jury::FromQualities({0.6, 0.7, 0.8, 0.9});
  const Jury b = Jury::FromQualities({0.9, 0.8, 0.7, 0.6});
  EXPECT_NEAR(ExactJq(a, *bv, 0.3).value(), ExactJq(b, *bv, 0.3).value(),
              1e-12);
}

TEST(ExactJqTest, SymmetricUnderComplementaryPriorForBv) {
  // Flipping the prior relabels 0 <-> 1; BV's JQ is unchanged because the
  // worker model is symmetric in the two answers.
  Rng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    const Jury jury = RandomJury(&rng, 5, 0.5, 0.95);
    const double alpha = rng.Uniform();
    EXPECT_NEAR(ExactJqBv(jury, alpha).value(),
                ExactJqBv(jury, 1.0 - alpha).value(), 1e-10);
  }
}

TEST(ExactJqTest, ExtremePriorPinsJqForBv) {
  // With alpha = 1 the task is known to be 0; BV can always answer 0.
  const Jury jury = Jury::FromQualities({0.6, 0.7});
  EXPECT_NEAR(ExactJqBv(jury, 1.0).value(), 1.0, 1e-9);
  EXPECT_NEAR(ExactJqBv(jury, 0.0).value(), 1.0, 1e-9);
}

// ------------------------------------------------------ Monte Carlo

TEST(MonteCarloJqTest, AgreesWithExactForEveryStrategy) {
  Rng rng(7);
  const Jury jury = RandomJury(&rng, 7, 0.55, 0.95);
  for (const auto& s : MakeAllStrategies()) {
    Rng mc_rng(1234);
    const double exact = ExactJq(jury, *s, 0.5).value();
    const double mc = MonteCarloJq(jury, *s, 0.5, 200000, &mc_rng).value();
    EXPECT_NEAR(mc, exact, 0.01) << s->name();
  }
}

TEST(MonteCarloJqTest, AgreesWithExactUnderInformativePrior) {
  Rng rng(9);
  const Jury jury = RandomJury(&rng, 5, 0.55, 0.9);
  auto bv = MakeStrategy("BV").value();
  Rng mc_rng(4321);
  const double exact = ExactJq(jury, *bv, 0.8).value();
  const double mc = MonteCarloJq(jury, *bv, 0.8, 200000, &mc_rng).value();
  EXPECT_NEAR(mc, exact, 0.01);
}

TEST(MonteCarloJqTest, ValidatesInputs) {
  const Jury jury = Jury::FromQualities({0.7});
  auto bv = MakeStrategy("BV").value();
  Rng rng(1);
  EXPECT_FALSE(MonteCarloJq(jury, *bv, 0.5, 0, &rng).ok());
  EXPECT_FALSE(MonteCarloJq(jury, *bv, 0.5, 10, nullptr).ok());
  EXPECT_FALSE(MonteCarloJq(Jury(), *bv, 0.5, 10, &rng).ok());
}

// Sweep: for juries of every size 1..9 and several priors, JQ(BV) is at
// least as large as every individual quality (Lemma 1 via singletons) and
// at least max(alpha, 1-alpha).
class ExactJqSweepTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ExactJqSweepTest, BvBeatsSingletonsAndPrior) {
  const auto [n, alpha] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + 7));
  const Jury jury = RandomJury(&rng, n, 0.5, 0.95);
  const double jq = ExactJqBv(jury, alpha).value();
  EXPECT_GE(jq + 1e-9, std::max(alpha, 1.0 - alpha));
  EXPECT_GE(jq + 1e-9, jury.MaxQuality() * std::min(1.0, 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactJqSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 7, 9),
                       ::testing::Values(0.2, 0.5, 0.8)));

}  // namespace
}  // namespace jury
