// Lemma 1 (monotonicity in jury size) and Lemma 2 (monotonicity in worker
// quality) for BV, plus their §5 corollaries for special cost structures.

#include <tuple>

#include "gtest/gtest.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/jsp.h"
#include "core/objective.h"
#include "jq/bucket.h"
#include "jq/exact.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::RandomJury;

class Lemma1Test : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Lemma1Test, AddingAWorkerNeverDecreasesBvJq) {
  const auto [n, alpha] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 911 +
          static_cast<std::uint64_t>(alpha * 1000));
  for (int trial = 0; trial < 20; ++trial) {
    const Jury jury = RandomJury(&rng, n, 0.5, 0.99);
    const double base = ExactJqBv(jury, alpha).value();
    Jury extended = jury;
    extended.Add({"new", rng.Uniform(0.5, 0.99), 0.0});
    EXPECT_GE(ExactJqBv(extended, alpha).value(), base - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma1Test,
    ::testing::Combine(::testing::Values(1, 2, 4, 7, 10),
                       ::testing::Values(0.2, 0.5, 0.8)));

TEST(Lemma1Test, HoldsEvenForLowQualityAdditions) {
  // BV flips a q < 0.5 worker into a useful one, so even "bad" workers
  // cannot hurt.
  Rng rng(1009);
  for (int trial = 0; trial < 30; ++trial) {
    const Jury jury = RandomJury(&rng, 5, 0.5, 0.95);
    const double base = ExactJqBv(jury, 0.5).value();
    Jury extended = jury;
    extended.Add({"bad", rng.Uniform(0.01, 0.49), 0.0});
    EXPECT_GE(ExactJqBv(extended, 0.5).value(), base - 1e-12);
  }
}

class Lemma2Test : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(Lemma2Test, RaisingAQualityNeverDecreasesBvJq) {
  const auto [n, alpha] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 7717 +
          static_cast<std::uint64_t>(alpha * 997));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> qs;
    for (int i = 0; i < n; ++i) qs.push_back(rng.Uniform(0.5, 0.95));
    const Jury jury = Jury::FromQualities(qs);
    const double base = ExactJqBv(jury, alpha).value();
    // Raise one random member's quality.
    auto improved = qs;
    const std::size_t who = static_cast<std::size_t>(
        rng.UniformInt(static_cast<std::uint64_t>(n)));
    improved[who] = rng.Uniform(improved[who], 0.99);
    EXPECT_GE(ExactJqBv(Jury::FromQualities(improved), alpha).value(),
              base - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Lemma2Test,
    ::testing::Combine(::testing::Values(1, 3, 5, 9),
                       ::testing::Values(0.3, 0.5, 0.7)));

TEST(Lemma2Test, FullQualityLadderIsMonotone) {
  // Sweep one worker's quality across [0.5, 0.99] and require a
  // non-decreasing JQ curve.
  double prev = 0.0;
  for (double q = 0.5; q <= 0.99; q += 0.01) {
    const std::vector<double> qs{0.6, 0.7, 0.8, q};
    const double jq = ExactJqBv(Jury::FromQualities(qs), 0.5).value();
    EXPECT_GE(jq, prev - 1e-12);
    prev = jq;
  }
}

// ---------------------------------------------- §5 corollaries

TEST(CostCorollaryTest, FreeWorkersMeanSelectEveryone) {
  // Lemma 1 corollary: with zero costs the whole pool is optimal.
  Rng rng(2027);
  JspInstance instance;
  instance.budget = 0.0;
  instance.alpha = 0.5;
  for (int i = 0; i < 8; ++i) {
    instance.candidates.emplace_back("w" + std::to_string(i),
                                     rng.Uniform(0.5, 0.95), 0.0);
  }
  const ExactBvObjective objective;
  const auto solution = SolveGreedyByQuality(instance, objective).value();
  EXPECT_EQ(solution.selected.size(), instance.candidates.size());
}

TEST(CostCorollaryTest, UniformCostsMeanTopKByQuality) {
  // Lemma 2 corollary: with uniform costs the top-k by quality is optimal.
  // Verify greedy-by-quality matches the exhaustive optimum.
  Rng rng(2029);
  for (int trial = 0; trial < 10; ++trial) {
    JspInstance instance;
    instance.budget = 3.0;  // exactly three workers affordable
    instance.alpha = 0.5;
    for (int i = 0; i < 7; ++i) {
      instance.candidates.emplace_back("w" + std::to_string(i),
                                       rng.Uniform(0.5, 0.95), 1.0);
    }
    const ExactBvObjective objective;
    const auto greedy = SolveGreedyByQuality(instance, objective).value();
    const auto exact =
        SolveExhaustive(instance, objective).value();
    EXPECT_NEAR(greedy.jq, exact.jq, 1e-9);
  }
}

TEST(MonotonicityTest, BucketEstimatorInheritsLemma1ApproximatelyMild) {
  // The approximation preserves Lemma 1 up to its error bound.
  Rng rng(2039);
  BucketJqOptions options;
  options.num_buckets = 400;
  for (int trial = 0; trial < 20; ++trial) {
    const Jury jury = RandomJury(&rng, 8, 0.5, 0.95);
    BucketJqStats stats;
    const double base = EstimateJq(jury, 0.5, options, &stats).value();
    Jury extended = jury;
    extended.Add({"new", rng.Uniform(0.5, 0.95), 0.0});
    BucketJqStats ext_stats;
    const double grown =
        EstimateJq(extended, 0.5, options, &ext_stats).value();
    EXPECT_GE(grown, base - stats.error_bound - ext_stats.error_bound - 1e-9);
  }
}

}  // namespace
}  // namespace jury
