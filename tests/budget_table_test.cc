#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "core/budget_table.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::Figure1Workers;

TEST(BudgetTableTest, ReproducesFigure1) {
  // The paper's headline example: the budget-quality table for workers A-G.
  Rng rng(1);
  OptjsOptions options;
  options.bucket.num_buckets = 400;  // tight enough to pick exact optima
  const auto rows =
      BuildBudgetQualityTable(Figure1Workers(), {5.0, 10.0, 15.0, 20.0}, 0.5,
                              &rng, options)
          .value();
  ASSERT_EQ(rows.size(), 4u);

  EXPECT_EQ(rows[0].jury_ids, "{F, G}");
  EXPECT_NEAR(rows[0].jq, 0.75, 0.005);
  EXPECT_NEAR(rows[0].required, 5.0, 1e-9);

  // The paper lists {C, G} at 80%; {C, F} ties at exactly 80% (BV follows
  // C either way) and costs 8 < 9, and ties break towards the cheaper jury.
  EXPECT_EQ(rows[1].jury_ids, "{C, F}");
  EXPECT_NEAR(rows[1].jq, 0.80, 0.005);
  EXPECT_NEAR(rows[1].required, 8.0, 1e-9);

  EXPECT_EQ(rows[2].jury_ids, "{B, C, G}");
  EXPECT_NEAR(rows[2].jq, 0.845, 0.005);
  EXPECT_NEAR(rows[2].required, 14.0, 1e-9);

  EXPECT_EQ(rows[3].jury_ids, "{A, C, F, G}");
  EXPECT_NEAR(rows[3].jq, 0.8695, 0.005);
  EXPECT_NEAR(rows[3].required, 20.0, 1e-9);
}

TEST(BudgetTableTest, JqIsMonotoneInBudget) {
  // A larger budget can only widen the feasible set (Lemma 1 corollary at
  // the system level).
  Rng rng(7);
  const auto rows = BuildBudgetQualityTable(
                        Figure1Workers(),
                        {2.0, 5.0, 8.0, 11.0, 14.0, 17.0, 20.0, 37.0}, 0.5,
                        &rng)
                        .value();
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].jq, rows[i - 1].jq - 1e-9);
  }
  // The full pool costs 37: the last row should select everyone.
  EXPECT_EQ(rows.back().selected.size(), Figure1Workers().size());
}

TEST(BudgetTableTest, RequiredNeverExceedsBudget) {
  Rng rng(11);
  const auto rows =
      BuildBudgetQualityTable(Figure1Workers(), {3.0, 7.0, 13.0}, 0.5, &rng)
          .value();
  for (const auto& row : rows) {
    EXPECT_LE(row.required, row.budget + 1e-12);
  }
}

TEST(BudgetTableTest, TinyBudgetYieldsEmptyJury) {
  Rng rng(13);
  const auto rows =
      BuildBudgetQualityTable(Figure1Workers(), {1.0}, 0.5, &rng).value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows[0].selected.empty());
  EXPECT_DOUBLE_EQ(rows[0].jq, 0.5);  // prior only
}

TEST(BudgetTableTest, InformativePriorLiftsAllRows) {
  Rng rng1(17), rng2(17);
  const auto flat =
      BuildBudgetQualityTable(Figure1Workers(), {5.0, 15.0}, 0.5, &rng1)
          .value();
  const auto informed =
      BuildBudgetQualityTable(Figure1Workers(), {5.0, 15.0}, 0.7, &rng2)
          .value();
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_GE(informed[i].jq, flat[i].jq - 1e-9);
  }
}

TEST(MinimalBudgetTest, FindsTheFigure1Knee) {
  // 84.5% requires {B, C, G} (cost 14); the bisection should land just
  // above 14 units.
  Rng rng(23);
  OptjsOptions options;
  options.bucket.num_buckets = 400;
  const auto row = MinimalBudgetForQuality(Figure1Workers(), 0.845, 0.5,
                                           &rng, options, 0.05)
                       .value();
  EXPECT_GE(row.jq, 0.845 - 1e-9);
  EXPECT_NEAR(row.budget, 14.0, 0.2);
  EXPECT_NEAR(row.required, 14.0, 1e-6);
}

TEST(MinimalBudgetTest, CheapTargetsCostLittle) {
  Rng rng(29);
  const auto row =
      MinimalBudgetForQuality(Figure1Workers(), 0.75, 0.5, &rng).value();
  EXPECT_GE(row.jq, 0.75 - 1e-9);
  EXPECT_LE(row.budget, 5.5);  // {F, G} at 5 units suffices
}

TEST(MinimalBudgetTest, UnreachableTargetFails) {
  Rng rng(31);
  EXPECT_EQ(MinimalBudgetForQuality(Figure1Workers(), 0.999, 0.5, &rng)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(MinimalBudgetTest, ValidatesArguments) {
  Rng rng(37);
  EXPECT_FALSE(
      MinimalBudgetForQuality(Figure1Workers(), 1.5, 0.5, &rng).ok());
  EXPECT_FALSE(MinimalBudgetForQuality(Figure1Workers(), 0.8, 0.5, &rng, {},
                                       -1.0)
                   .ok());
}

TEST(BudgetTableTest, FormatsInPaperStyle) {
  Rng rng(19);
  const auto rows =
      BuildBudgetQualityTable(Figure1Workers(), {15.0}, 0.5, &rng).value();
  const std::string rendered = FormatBudgetQualityTable(rows);
  EXPECT_NE(rendered.find("Budget"), std::string::npos);
  EXPECT_NE(rendered.find("{B, C, G}"), std::string::npos);
  EXPECT_NE(rendered.find("84.50%"), std::string::npos);
}

/// Sets JURYOPT_THREADS for one scope, restoring the previous value — the
/// TSAN CI job runs this binary with JURYOPT_THREADS=4 and later tests
/// must still see it.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const std::string& value) {
    const char* prev = std::getenv("JURYOPT_THREADS");
    if (prev != nullptr) {
      had_previous_ = true;
      previous_ = prev;
    }
    ::setenv("JURYOPT_THREADS", value.c_str(), 1);
  }
  ~ScopedThreadsEnv() {
    if (had_previous_) {
      ::setenv("JURYOPT_THREADS", previous_.c_str(), 1);
    } else {
      ::unsetenv("JURYOPT_THREADS");
    }
  }

 private:
  bool had_previous_ = false;
  std::string previous_;
};

TEST(BudgetTableNestedParallelismTest, NestedTablesAreThreadCountInvariant) {
  // The nested-parallel path proper: 16 candidates force the annealing
  // branch of SolveOptjs, 3 restart chains give every row inner parallel
  // regions, and 2 rows < workers force the scheduler to fan those inner
  // regions across otherwise-idle workers. The table must be bit-identical
  // for JURYOPT_THREADS in {1, 2, 8}.
  Rng pool_rng(88001);
  const auto pool =
      jury::testing::RandomPool(&pool_rng, 16, 0.5, 0.95, 0.05, 0.4);
  const std::vector<double> budgets{0.3, 0.7};
  OptjsOptions options;
  options.annealing.num_restarts = 3;
  std::vector<BudgetQualityRow> reference;
  for (const char* threads : {"1", "2", "8"}) {
    ScopedThreadsEnv env(threads);
    Rng rng(654);
    const auto rows =
        BuildBudgetQualityTable(pool, budgets, 0.5, &rng, options).value();
    if (reference.empty()) {
      reference = rows;
      continue;
    }
    ASSERT_EQ(rows.size(), reference.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i].selected, reference[i].selected)
          << "row " << i << ", threads " << threads;
      EXPECT_NEAR(rows[i].jq, reference[i].jq, 1e-12);
    }
  }
}

TEST(BudgetTableNestedParallelismTest, NestedMatchesFixedPoolBaseline) {
  // Nested solver parallelism is a scheduling change only: the same table
  // as the historical inner-pinned-to-one-thread mode, bit for bit.
  Rng pool_rng(88011);
  const auto pool =
      jury::testing::RandomPool(&pool_rng, 16, 0.5, 0.95, 0.05, 0.4);
  const std::vector<double> budgets{0.25, 0.5, 0.75};
  OptjsOptions options;
  options.annealing.num_restarts = 2;
  ScopedThreadsEnv env("8");
  BudgetTableOptions nested;  // default: nested parallelism on
  BudgetTableOptions pinned;
  pinned.nested_solver_parallelism = false;
  Rng rng_a(987);
  const auto with_nested =
      BuildBudgetQualityTable(pool, budgets, 0.5, &rng_a, options, nested)
          .value();
  Rng rng_b(987);
  const auto with_pin =
      BuildBudgetQualityTable(pool, budgets, 0.5, &rng_b, options, pinned)
          .value();
  ASSERT_EQ(with_nested.size(), with_pin.size());
  for (std::size_t i = 0; i < with_nested.size(); ++i) {
    EXPECT_EQ(with_nested[i].selected, with_pin[i].selected) << "row " << i;
    EXPECT_NEAR(with_nested[i].jq, with_pin[i].jq, 1e-12);
  }
}

}  // namespace
}  // namespace jury
