// The README promises: "All randomness flows through explicitly-seeded
// jury::Rng, so every experiment is reproducible bit-for-bit." This suite
// holds every stochastic component to that promise.

#include "gtest/gtest.h"
#include "core/annealing.h"
#include "core/mvjs.h"
#include "core/objective.h"
#include "core/optjs.h"
#include "core/sequential.h"
#include "crowd/mc_sim.h"
#include "crowd/pool.h"
#include "crowd/sentiment.h"
#include "crowd/vote_sim.h"
#include "jq/monte_carlo.h"
#include "strategy/registry.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::RandomPool;

template <typename F>
void ExpectSameTwice(F run) {
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(DeterminismTest, CampaignSimulation) {
  crowd::CampaignConfig config;
  config.num_tasks = 40;
  config.tasks_per_hit = 20;
  config.assignments_per_hit = 4;
  config.num_workers = 6;
  const std::vector<double> quality(6, 0.75);
  const std::vector<int> quota{2, 2, 1, 1, 1, 1};
  ExpectSameTwice([&] {
    Rng rng(321);
    const auto campaign =
        crowd::SimulateCampaign(config, quality, quota, &rng).value();
    std::vector<int> flat;
    for (const auto& task : campaign.tasks) {
      flat.push_back(task.truth);
      for (const auto& a : task.answers) {
        flat.push_back(static_cast<int>(a.worker));
        flat.push_back(a.vote);
      }
    }
    return flat;
  });
}

TEST(DeterminismTest, SentimentDataset) {
  ExpectSameTwice([&] {
    Rng rng(777);
    const auto dataset =
        crowd::MakeSentimentDataset(crowd::SentimentConfig{}, &rng).value();
    return dataset.estimated_quality;
  });
}

TEST(DeterminismTest, AnnealingSolver) {
  Rng pool_rng(99);
  JspInstance instance;
  instance.candidates = RandomPool(&pool_rng, 20, 0.5, 0.95, 0.05, 0.3);
  instance.budget = 0.5;
  instance.alpha = 0.5;
  const BucketBvObjective objective;
  ExpectSameTwice([&] {
    Rng rng(4242);
    return SolveAnnealing(instance, objective, &rng).value().selected;
  });
}

TEST(DeterminismTest, FullSystems) {
  Rng pool_rng(101);
  JspInstance instance;
  instance.candidates = RandomPool(&pool_rng, 16, 0.5, 0.95, 0.05, 0.3);
  instance.budget = 0.5;
  instance.alpha = 0.5;
  ExpectSameTwice([&] {
    Rng rng(555);
    return SolveOptjs(instance, &rng).value().selected;
  });
  ExpectSameTwice([&] {
    Rng rng(556);
    return SolveMvjs(instance, &rng).value().selected;
  });
}

TEST(DeterminismTest, MonteCarloJq) {
  Rng pool_rng(7);
  const Jury jury =
      Jury::FromQualities({0.6, 0.7, 0.8, 0.65, 0.72, 0.9});
  auto bv = MakeStrategy("BV").value();
  double first = 0.0;
  for (int i = 0; i < 2; ++i) {
    Rng rng(888);
    const double jq = MonteCarloJq(jury, *bv, 0.5, 20000, &rng).value();
    if (i == 0) first = jq;
    EXPECT_DOUBLE_EQ(jq, first);
  }
}

TEST(DeterminismTest, McWorld) {
  const std::vector<mc::ConfusionMatrix> cms(
      4, mc::ConfusionMatrix::FromQuality(0.8, 3));
  ExpectSameTwice([&] {
    Rng rng(1234);
    const auto world = crowd::SimulateMcWorld(cms, 60, &rng).value();
    std::vector<std::size_t> flat = world.truths;
    for (const auto& task : world.dataset.tasks) {
      for (const auto& a : task) flat.push_back(a.vote);
    }
    return flat;
  });
}

TEST(DeterminismTest, SequentialPolicyWithSimulatedVotes) {
  std::vector<Worker> stream(12, Worker("w", 0.7, 0.05));
  ExpectSameTwice([&] {
    Rng rng(31415);
    const int truth = crowd::SampleTruth(0.5, &rng);
    SequentialConfig config;
    config.confidence_threshold = 0.93;
    const auto outcome =
        RunSequentialPolicy(
            stream,
            [&](const Worker& w, std::size_t) {
              return crowd::SimulateVote(w.quality, truth, &rng);
            },
            config)
            .value();
    return std::make_tuple(outcome.answer, outcome.votes_used,
                           outcome.spent);
  });
}

TEST(DeterminismTest, ForkedStreamsAreStableButDistinct) {
  Rng a(2026), b(2026);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  // Forks of identically-seeded parents match each other...
  for (int i = 0; i < 16; ++i) EXPECT_EQ(fa.Next(), fb.Next());
  // ...but differ from their parents' continued streams.
  Rng c(2026);
  Rng fc = c.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (c.Next() == fc.Next());
  EXPECT_LT(same, 4);
}

}  // namespace
}  // namespace jury
