#include <memory>
#include <tuple>

#include "gtest/gtest.h"
#include "model/jury.h"
#include "strategy/bayesian.h"
#include "strategy/half_voting.h"
#include "strategy/majority.h"
#include "strategy/random_ballot.h"
#include "strategy/randomized_majority.h"
#include "strategy/registry.h"
#include "strategy/triadic.h"
#include "strategy/weighted_majority.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::Figure2Jury;
using jury::testing::RandomJury;

// ------------------------------------------------------------------- MV

TEST(MajorityVotingTest, FollowsTheCount) {
  const MajorityVoting mv;
  const Jury jury = Jury::FromQualities({0.9, 0.6, 0.6});
  EXPECT_DOUBLE_EQ(mv.ProbZero(jury, {0, 0, 1}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(mv.ProbZero(jury, {0, 1, 1}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(mv.ProbZero(jury, {0, 0, 0}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(mv.ProbZero(jury, {1, 1, 1}, 0.5), 0.0);
}

TEST(MajorityVotingTest, EvenTieGoesToOne) {
  // Definition in Example 1: result 0 iff zeros >= (n+1)/2. With n = 4 and
  // a 2-2 split, 2 < 2.5 so the result is 1.
  const MajorityVoting mv;
  const Jury jury = Jury::FromQualities({0.7, 0.7, 0.7, 0.7});
  EXPECT_DOUBLE_EQ(mv.ProbZero(jury, {0, 0, 1, 1}, 0.5), 0.0);
}

TEST(MajorityVotingTest, IgnoresQualitiesAndPrior) {
  const MajorityVoting mv;
  const Jury weak = Jury::FromQualities({0.51, 0.51, 0.51});
  const Jury strong = Jury::FromQualities({0.99, 0.99, 0.99});
  const Votes votes{0, 1, 0};
  EXPECT_DOUBLE_EQ(mv.ProbZero(weak, votes, 0.1),
                   mv.ProbZero(strong, votes, 0.9));
}

TEST(MajorityVotingTest, IsDeterministic) {
  const MajorityVoting mv;
  EXPECT_TRUE(mv.is_deterministic());
  EXPECT_EQ(mv.kind(), StrategyKind::kDeterministic);
}

// ------------------------------------------------------------------- BV

TEST(BayesianVotingTest, PaperExampleFromSection3) {
  // §3.3: alpha = 0.5, qualities (0.9, 0.6, 0.6), votes V = {0, 1, 1}:
  // 0.5*0.9*0.4*0.4 > 0.5*0.1*0.6*0.6, so BV returns 0 — it follows the
  // single high-quality worker against the two weak ones.
  const BayesianVoting bv;
  EXPECT_DOUBLE_EQ(bv.ProbZero(Figure2Jury(), {0, 1, 1}, 0.5), 1.0);
  // MV disagrees on the same voting.
  const MajorityVoting mv;
  EXPECT_DOUBLE_EQ(mv.ProbZero(Figure2Jury(), {0, 1, 1}, 0.5), 0.0);
}

TEST(BayesianVotingTest, TieBreaksToZero) {
  // Theorem 1: S*(V) = 0 when P0(V) - P1(V) >= 0, including equality.
  const BayesianVoting bv;
  const Jury jury = Jury::FromQualities({0.8, 0.8});
  EXPECT_DOUBLE_EQ(bv.ProbZero(jury, {0, 1}, 0.5), 1.0);
}

TEST(BayesianVotingTest, PriorShiftsTheDecision) {
  const BayesianVoting bv;
  const Jury jury = Jury::FromQualities({0.6});
  // A strong prior towards 1 overrules a single weak 0-vote:
  // alpha*q = 0.1*0.6 < (1-alpha)*(1-q) = 0.9*0.4.
  EXPECT_DOUBLE_EQ(bv.ProbZero(jury, {0}, 0.1), 0.0);
  // The uninformative prior lets the vote through.
  EXPECT_DOUBLE_EQ(bv.ProbZero(jury, {0}, 0.5), 1.0);
}

TEST(BayesianVotingTest, LowQualityWorkerIsEvidenceForOpposite) {
  // A q < 0.5 worker voting 0 is evidence for 1 (the §3.3 reinterpretation
  // falls out of the log-odds weight turning negative).
  const BayesianVoting bv;
  const Jury jury = Jury::FromQualities({0.2});
  EXPECT_DOUBLE_EQ(bv.ProbZero(jury, {0}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(bv.ProbZero(jury, {1}, 0.5), 1.0);
}

TEST(BayesianVotingTest, DecisionStatisticSignMatchesDecision) {
  Rng rng(3);
  const BayesianVoting bv;
  for (int trial = 0; trial < 200; ++trial) {
    const Jury jury = RandomJury(&rng, 5, 0.4, 0.95);
    Votes votes(5);
    for (auto& v : votes) {
      v = static_cast<std::uint8_t>(rng.UniformInt(2));
    }
    const double alpha = rng.Uniform(0.05, 0.95);
    const double stat = BayesianVoting::DecisionStatistic(jury, votes, alpha);
    EXPECT_EQ(bv.ProbZero(jury, votes, alpha), stat >= 0.0 ? 1.0 : 0.0);
  }
}

// ------------------------------------------------------------------ RMV

TEST(RandomizedMajorityTest, ProbabilityProportionalToZeros) {
  const RandomizedMajorityVoting rmv;
  const Jury jury = Jury::FromQualities({0.7, 0.7, 0.7, 0.7});
  EXPECT_DOUBLE_EQ(rmv.ProbZero(jury, {0, 0, 0, 0}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(rmv.ProbZero(jury, {0, 0, 1, 1}, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(rmv.ProbZero(jury, {1, 1, 1, 0}, 0.5), 0.25);
  EXPECT_FALSE(rmv.is_deterministic());
}

TEST(RandomizedMajorityTest, DecideSamplesTheDistribution) {
  const RandomizedMajorityVoting rmv;
  const Jury jury = Jury::FromQualities({0.7, 0.7, 0.7, 0.7});
  Rng rng(11);
  int zeros = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    zeros += (rmv.Decide(jury, {0, 0, 1, 1}, 0.5, &rng) == 0);
  }
  EXPECT_NEAR(static_cast<double>(zeros) / trials, 0.5, 0.02);
}

// ------------------------------------------------------------------ RBV

TEST(RandomBallotTest, AlwaysHalf) {
  const RandomBallotVoting rbv;
  const Jury jury = Jury::FromQualities({0.99, 0.99});
  EXPECT_DOUBLE_EQ(rbv.ProbZero(jury, {0, 0}, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(rbv.ProbZero(jury, {1, 1}, 0.9), 0.5);
}

// ------------------------------------------------------------------ WMV

TEST(WeightedMajorityTest, DefaultWeightsMatchBvAtUninformativePrior) {
  // WMV with log-odds weights is exactly BV when alpha = 0.5 [23].
  Rng rng(13);
  const WeightedMajorityVoting wmv;
  const BayesianVoting bv;
  for (int trial = 0; trial < 300; ++trial) {
    const Jury jury = RandomJury(&rng, 4, 0.51, 0.97);
    Votes votes(4);
    for (auto& v : votes) {
      v = static_cast<std::uint8_t>(rng.UniformInt(2));
    }
    EXPECT_EQ(wmv.ProbZero(jury, votes, 0.5), bv.ProbZero(jury, votes, 0.5));
  }
}

TEST(WeightedMajorityTest, ExplicitWeightsOverrideQualities) {
  // Give all the weight to the last worker; it dictates the result.
  const WeightedMajorityVoting wmv({0.1, 0.1, 5.0});
  const Jury jury = Jury::FromQualities({0.9, 0.9, 0.6});
  EXPECT_DOUBLE_EQ(wmv.ProbZero(jury, {1, 1, 0}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(wmv.ProbZero(jury, {0, 0, 1}, 0.5), 0.0);
}

TEST(WeightedMajorityTest, IgnoresPrior) {
  const WeightedMajorityVoting wmv;
  const Jury jury = Jury::FromQualities({0.8, 0.7});
  EXPECT_EQ(wmv.ProbZero(jury, {0, 1}, 0.01), wmv.ProbZero(jury, {0, 1}, 0.99));
}

// ----------------------------------------------------------------- HALF

TEST(HalfVotingTest, EvenTieGoesToZero) {
  const HalfVoting half;
  const MajorityVoting mv;
  const Jury jury = Jury::FromQualities({0.7, 0.7, 0.7, 0.7});
  const Votes tie{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(half.ProbZero(jury, tie, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(mv.ProbZero(jury, tie, 0.5), 0.0);
}

TEST(HalfVotingTest, AgreesWithMvOnOddJuries) {
  Rng rng(17);
  const HalfVoting half;
  const MajorityVoting mv;
  for (int trial = 0; trial < 200; ++trial) {
    const Jury jury = RandomJury(&rng, 5);
    Votes votes(5);
    for (auto& v : votes) {
      v = static_cast<std::uint8_t>(rng.UniformInt(2));
    }
    EXPECT_EQ(half.ProbZero(jury, votes, 0.5),
              mv.ProbZero(jury, votes, 0.5));
  }
}

// -------------------------------------------------------------- TRIADIC

TEST(TriadicTest, UnanimousVotesAreCertain) {
  const TriadicConsensus triadic;
  const Jury jury = Jury::FromQualities(std::vector<double>(5, 0.7));
  EXPECT_DOUBLE_EQ(triadic.ProbZero(jury, {0, 0, 0, 0, 0}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(triadic.ProbZero(jury, {1, 1, 1, 1, 1}, 0.5), 0.0);
}

TEST(TriadicTest, MatchesHypergeometricFormula) {
  // n=5, z=3 zeros: triads with >=2 zeros = C(3,2)*C(2,1) + C(3,3) = 7,
  // over C(5,3) = 10 triads.
  const TriadicConsensus triadic;
  const Jury jury = Jury::FromQualities(std::vector<double>(5, 0.7));
  EXPECT_NEAR(triadic.ProbZero(jury, {0, 0, 0, 1, 1}, 0.5), 0.7, 1e-12);
  // n=4, z=2: C(2,2)*C(2,1) + 0 = 2 over C(4,3) = 4.
  const Jury four = Jury::FromQualities(std::vector<double>(4, 0.7));
  EXPECT_NEAR(triadic.ProbZero(four, {0, 0, 1, 1}, 0.5), 0.5, 1e-12);
}

TEST(TriadicTest, MatchesMonteCarloTriadSampling) {
  // The closed form must equal the empirical frequency of majority-0 over
  // uniformly sampled triads.
  const TriadicConsensus triadic;
  Rng rng(29);
  const int n = 7;
  const Jury jury = Jury::FromQualities(std::vector<double>(n, 0.7));
  const Votes votes{0, 1, 0, 0, 1, 1, 0};  // z = 4
  const double closed = triadic.ProbZero(jury, votes, 0.5);
  int zero_majorities = 0;
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) {
    const auto triad =
        rng.SampleWithoutReplacement(static_cast<std::size_t>(n), 3);
    int zeros = 0;
    for (std::size_t idx : triad) zeros += (votes[idx] == 0);
    zero_majorities += (zeros >= 2);
  }
  EXPECT_NEAR(static_cast<double>(zero_majorities) / trials, closed, 0.005);
}

TEST(TriadicTest, DegeneratesToRmvBelowThreeVoters) {
  const TriadicConsensus triadic;
  const RandomizedMajorityVoting rmv;
  const Jury two = Jury::FromQualities({0.8, 0.6});
  for (const Votes& votes :
       {Votes{0, 0}, Votes{0, 1}, Votes{1, 0}, Votes{1, 1}}) {
    EXPECT_DOUBLE_EQ(triadic.ProbZero(two, votes, 0.5),
                     rmv.ProbZero(two, votes, 0.5));
  }
}

// -------------------------------------------------------------- Registry

TEST(RegistryTest, MakesEveryBuiltin) {
  for (const std::string& name : BuiltinStrategyNames()) {
    auto made = MakeStrategy(name);
    ASSERT_TRUE(made.ok()) << name;
    EXPECT_EQ((*made)->name(), name);
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  EXPECT_EQ(MakeStrategy("NOPE").status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, MakeAllMatchesNameList) {
  const auto all = MakeAllStrategies();
  const auto names = BuiltinStrategyNames();
  ASSERT_EQ(all.size(), names.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i]->name(), names[i]);
  }
}

// Deterministic strategies must return extreme probabilities everywhere.
class DeterminismContractTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismContractTest, ProbZeroIsExtremeIffDeterministic) {
  auto strategy = MakeStrategy(GetParam()).value();
  Rng rng(23);
  bool saw_interior = false;
  for (int trial = 0; trial < 100; ++trial) {
    const Jury jury = RandomJury(&rng, 5, 0.5, 0.95);
    Votes votes(5);
    for (auto& v : votes) {
      v = static_cast<std::uint8_t>(rng.UniformInt(2));
    }
    const double p0 = strategy->ProbZero(jury, votes, 0.5);
    EXPECT_GE(p0, 0.0);
    EXPECT_LE(p0, 1.0);
    if (p0 > 0.0 && p0 < 1.0) saw_interior = true;
    if (strategy->is_deterministic()) {
      EXPECT_TRUE(p0 == 0.0 || p0 == 1.0);
    }
  }
  if (!strategy->is_deterministic()) {
    EXPECT_TRUE(saw_interior) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, DeterminismContractTest,
                         ::testing::Values("MV", "BV", "RMV", "RBV", "WMV",
                                           "HALF", "TRIADIC"));

}  // namespace
}  // namespace jury
