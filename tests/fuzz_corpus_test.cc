// Deterministic replay of the checked-in fuzz seed corpus
// (tests/corpus/) through the structured fuzz targets (fuzz/targets.h).
//
// This is the tier-1 face of the fuzzing setup: it runs in every build —
// including the ASAN and UBSAN CI jobs — without a fuzzing toolchain,
// so any input that ever crashed (and was checked in as a seed) stays
// fixed, and the "no input can abort" contract is asserted on every
// commit. The libFuzzer binaries (fuzz/fuzz_*_main.cc, built under
// -DJURYOPT_ENABLE_FUZZERS=ON) explore beyond the seeds; new findings
// get minimized and added here.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/targets.h"
#include "gtest/gtest.h"

namespace jury {
namespace {

#ifndef JURYOPT_CORPUS_DIR
#error "build must define JURYOPT_CORPUS_DIR (see CMakeLists.txt)"
#endif

std::filesystem::path CorpusDir(const std::string& target) {
  return std::filesystem::path(JURYOPT_CORPUS_DIR) / target;
}

std::vector<std::filesystem::path> CorpusFiles(const std::string& target) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(CorpusDir(target))) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  // directory_iterator order is unspecified; sort for a stable replay.
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> ReadBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open corpus file " << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

using TargetFn = void (*)(const std::uint8_t*, std::size_t);

void ReplayCorpus(const std::string& target, TargetFn fn) {
  const std::vector<std::filesystem::path> files = CorpusFiles(target);
  ASSERT_FALSE(files.empty())
      << "empty corpus directory " << CorpusDir(target)
      << " — seeds are checked in, so this is a packaging error";
  for (const std::filesystem::path& path : files) {
    SCOPED_TRACE(path.string());
    const std::vector<std::uint8_t> bytes = ReadBytes(path);
    // The assertion is survival: any abort/UB here fails the test (and
    // the sanitizer jobs make UB loud even when it wouldn't crash).
    fn(bytes.data(), bytes.size());
  }
}

TEST(FuzzCorpus, JsonSeedsReplayClean) { ReplayCorpus("json", fuzz::FuzzJson); }

TEST(FuzzCorpus, SolveRequestSeedsReplayClean) {
  ReplayCorpus("solve_request", fuzz::FuzzSolveRequest);
}

TEST(FuzzCorpus, PoolSnapshotSeedsReplayClean) {
  ReplayCorpus("pool_snapshot", fuzz::FuzzPoolSnapshot);
}

}  // namespace
}  // namespace jury
