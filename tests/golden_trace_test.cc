// The golden-trace determinism gate (see src/api/trace.h).
//
// Each fixture under tests/golden/ is a recorded (pool, request stream,
// report stream). The test replays every fixture under the *current*
// execution configuration and asserts byte-identical normalized report
// JSON; CI runs this binary across JURYOPT_THREADS in {1, 8} x
// JURYOPT_SIMD in {scalar, avx2}, so a determinism regression in any
// solver, kernel tier, or the scheduler fails the matrix — not just a
// same-process property test.
//
// Regenerating fixtures (after an *intentional* behavior change):
//   JURYOPT_REGEN_GOLDEN=1 ./golden_trace_test
// rewrites every fixture from the request streams defined below, then
// fails the run as a reminder that the diff must be reviewed and
// committed deliberately.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/trace.h"
#include "gtest/gtest.h"

namespace jury::api {
namespace {

#ifndef JURYOPT_GOLDEN_DIR
#error "build must define JURYOPT_GOLDEN_DIR (see CMakeLists.txt)"
#endif

std::filesystem::path GoldenPath(const std::string& name) {
  return std::filesystem::path(JURYOPT_GOLDEN_DIR) / (name + ".json");
}

bool RegenRequested() {
  const char* regen = std::getenv("JURYOPT_REGEN_GOLDEN");
  return regen != nullptr && *regen != '\0' && std::string(regen) != "0";
}

/// The paper's Fig. 1 pool (7 workers, "A".."G") plus a free rider and a
/// sub-half worker — the pool every fixture solves against.
std::vector<Worker> FixturePool() {
  return {
      {"A", 0.90, 5.0}, {"B", 0.85, 4.0}, {"C", 0.80, 3.0},
      {"D", 0.75, 2.0}, {"E", 0.70, 2.0}, {"F", 0.65, 1.0},
      {"G", 0.60, 1.0}, {"free", 0.55, 0.0}, {"sub", 0.35, 0.5},
  };
}

/// One fixture = one named request stream. Streams deliberately mix
/// solver families, thread knobs, and both objective backends so the
/// replay crosses every seam the determinism contract covers (restart
/// fan-out, Gray-code sharding, bucket vs exact scoring, fused scans via
/// SolveMany in the recorder's serial loop).
struct Fixture {
  std::string name;
  std::vector<SolveRequest> requests;
};

std::vector<Fixture> Fixtures() {
  std::vector<Fixture> fixtures;

  {
    Fixture deterministic;
    deterministic.name = "deterministic_solvers";
    for (const char* solver :
         {"greedy-quality", "greedy-value", "greedy-mg", "odd-top-k"}) {
      SolveRequest request;
      request.solver = solver;
      request.budget = 8.0;
      request.alpha = 0.4;
      deterministic.requests.push_back(request);
    }
    {
      SolveRequest request;
      request.solver = "exhaustive";
      request.budget = 6.0;
      request.tuning.exhaustive.num_threads = 4;
      deterministic.requests.push_back(request);
    }
    {
      SolveRequest request;
      request.solver = "branch-bound";
      request.budget = 9.0;
      request.alpha = 0.55;
      deterministic.requests.push_back(request);
    }
    fixtures.push_back(std::move(deterministic));
  }

  {
    Fixture stochastic;
    stochastic.name = "stochastic_solvers";
    for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
      SolveRequest request;
      request.solver = "annealing";
      request.budget = 7.0;
      request.rng_seed = seed;
      request.tuning.annealing.num_restarts = 4;
      request.tuning.annealing.num_threads = 4;
      request.tuning.annealing.return_best_seen = true;
      stochastic.requests.push_back(request);
    }
    {
      SolveRequest request;
      request.solver = "optjs";
      request.budget = 8.0;
      request.rng_seed = 99;
      request.tuning.optjs.num_threads = 4;
      stochastic.requests.push_back(request);
    }
    {
      SolveRequest request;
      request.solver = "mvjs";
      request.budget = 5.0;
      request.rng_seed = 7;
      stochastic.requests.push_back(request);
    }
    fixtures.push_back(std::move(stochastic));
  }

  {
    Fixture objectives;
    objectives.name = "objective_backends";
    for (const char* objective : {"bv-bucket", "bv-exact", "mv-exact"}) {
      SolveRequest request;
      request.solver = "greedy-mg";
      request.budget = 6.0;
      request.alpha = 0.45;
      request.tuning.objective = objective;
      objectives.requests.push_back(request);
    }
    {
      SolveRequest request;
      request.solver = "annealing";
      request.budget = 6.0;
      request.rng_seed = 5;
      request.tuning.objective = "bv-bucket";
      request.tuning.bucket.num_buckets = 200;
      request.tuning.bucket.backend = BucketBackend::kSparse;
      objectives.requests.push_back(request);
    }
    fixtures.push_back(std::move(objectives));
  }

  return fixtures;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class GoldenTraceTest : public ::testing::TestWithParam<Fixture> {};

TEST_P(GoldenTraceTest, ReplayIsByteIdentical) {
  const Fixture& fixture = GetParam();
  const std::filesystem::path path = GoldenPath(fixture.name);

  if (RegenRequested()) {
    Result<SolveTrace> recorded =
        RecordTrace(FixturePool(), fixture.requests);
    ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << recorded.value().ToJson() << "\n";
    out.close();
    FAIL() << "regenerated " << path
           << " — review and commit the diff, then rerun without "
              "JURYOPT_REGEN_GOLDEN";
  }

  ASSERT_TRUE(std::filesystem::exists(path))
      << path << " missing — run JURYOPT_REGEN_GOLDEN=1 ./golden_trace_test";
  Result<SolveTrace> trace = SolveTrace::Parse(ReadFile(path));
  ASSERT_TRUE(trace.ok()) << trace.status().ToString();
  ASSERT_EQ(trace.value().entries.size(), fixture.requests.size())
      << "fixture " << fixture.name
      << " is stale — regenerate with JURYOPT_REGEN_GOLDEN=1";

  Result<std::size_t> replayed = ReplayTrace(trace.value());
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(replayed.value(), fixture.requests.size());
}

// Round-trip of the fixture format itself: Parse(ToJson(trace)) must be
// lossless, so fixtures survive re-recording and review edits.
TEST(GoldenTraceFormat, TraceJsonRoundTrips) {
  std::vector<SolveRequest> requests;
  SolveRequest request;
  request.solver = "greedy-quality";
  request.budget = 4.0;
  requests.push_back(request);
  Result<SolveTrace> recorded = RecordTrace(FixturePool(), requests);
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();

  const std::string dumped = recorded.value().ToJson();
  Result<SolveTrace> reparsed = SolveTrace::Parse(dumped);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().ToJson(), dumped);
  EXPECT_EQ(reparsed.value().entries[0].report_json,
            recorded.value().entries[0].report_json);
}

TEST(GoldenTraceFormat, NormalizeZeroesWallClock) {
  Result<std::string> normalized = NormalizeReportJson(
      R"({"solver":"x","wall_seconds":123.456,"stats":{}})");
  ASSERT_TRUE(normalized.ok()) << normalized.status().ToString();
  EXPECT_EQ(normalized.value(),
            R"({"solver":"x","stats":{},"wall_seconds":0})");
  EXPECT_FALSE(NormalizeReportJson(R"({"no_wall":1})").ok());
  EXPECT_FALSE(NormalizeReportJson("[1,2]").ok());
  EXPECT_FALSE(NormalizeReportJson("not json").ok());
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, GoldenTraceTest, ::testing::ValuesIn(Fixtures()),
    [](const ::testing::TestParamInfo<Fixture>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace jury::api
