#include <tuple>

#include "gtest/gtest.h"
#include "jq/bucket.h"
#include "jq/closed_form.h"
#include "jq/exact.h"
#include "jq/monte_carlo.h"
#include "jq/prior_transform.h"
#include "strategy/registry.h"
#include "test_util.h"
#include "util/rng.h"

namespace jury {
namespace {

using jury::testing::Figure2Jury;
using jury::testing::RandomJury;

TEST(BucketJqTest, MatchesExactOnPaperExample) {
  // Fig. 2 jury: JQ(J, BV, 0.5) = 90%.
  BucketJqOptions options;
  options.num_buckets = 200;
  EXPECT_NEAR(EstimateJq(Figure2Jury(), 0.5, options).value(), 0.9, 1e-6);
}

TEST(BucketJqTest, SingleWorker) {
  for (double q : {0.55, 0.7, 0.9}) {
    EXPECT_NEAR(EstimateJq(Jury::FromQualities({q}), 0.5).value(), q, 1e-9);
  }
}

TEST(BucketJqTest, AllCoinFlippersGiveHalf) {
  const Jury jury = Jury::FromQualities({0.5, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(EstimateJq(jury, 0.5).value(), 0.5);
}

TEST(BucketJqTest, HighQualityShortcutFires) {
  BucketJqStats stats;
  const Jury jury = Jury::FromQualities({0.995, 0.6});
  const double jq = EstimateJq(jury, 0.5, {}, &stats).value();
  EXPECT_TRUE(stats.high_quality_shortcut);
  EXPECT_DOUBLE_EQ(jq, 0.995);
}

TEST(BucketJqTest, HighQualityShortcutCanBeDisabled) {
  BucketJqOptions options;
  options.high_quality_cutoff = 1.0;
  options.num_buckets = 400;
  BucketJqStats stats;
  const Jury jury = Jury::FromQualities({0.995, 0.6});
  const double jq = EstimateJq(jury, 0.5, options, &stats).value();
  EXPECT_FALSE(stats.high_quality_shortcut);
  const double exact = ExactJqBv(jury, 0.5).value();
  EXPECT_LE(jq, exact + 1e-12);
  EXPECT_NEAR(jq, exact, 0.01);
}

TEST(BucketJqTest, RejectsBadInputs) {
  EXPECT_FALSE(EstimateJq(Jury(), 0.5).ok());
  EXPECT_FALSE(EstimateJq(Figure2Jury(), 1.5).ok());
  BucketJqOptions options;
  options.num_buckets = 0;
  EXPECT_FALSE(EstimateJq(Figure2Jury(), 0.5, options).ok());
}

TEST(BucketJqTest, ErrorBoundFormula) {
  EXPECT_DOUBLE_EQ(BucketErrorBound(10, 0.0), 0.0);
  // §4.4: with upper < 5 and numBuckets = d*n, d = 200, the bound is
  // e^{5/800} - 1 < 0.627%.
  const int n = 10;
  const double delta = 5.0 / (200.0 * n);
  EXPECT_LT(BucketErrorBound(n, delta), 0.00627);
  EXPECT_GT(BucketErrorBound(n, delta), 0.0);
}

TEST(BucketJqTest, RequiredBucketMultiplier) {
  // d >= 200 guarantees < 1% error for upper <= 5 (§4.4).
  EXPECT_LE(RequiredBucketMultiplier(5.0, 0.01), 200);
  EXPECT_GE(RequiredBucketMultiplier(5.0, 0.001), 200);
  const int d = RequiredBucketMultiplier(5.0, 0.01);
  const int n = 7;
  EXPECT_LT(BucketErrorBound(n, 5.0 / (d * n)), 0.01);
}

// ------------------------------------------------------ Property sweeps

/// The §4.4 guarantees, against exact enumeration: the estimate never
/// exceeds the true JQ, and undershoots by less than the analytic bound.
class BucketGuaranteeTest
    : public ::testing::TestWithParam<std::tuple<int, int, double, int>> {};

TEST_P(BucketGuaranteeTest, UnderestimatesWithinBound) {
  const auto [n, num_buckets, alpha, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 +
          static_cast<std::uint64_t>(n * 31 + num_buckets));
  const Jury jury = RandomJury(&rng, n, 0.5, 0.97);
  const double exact = ExactJqBv(jury, alpha).value();

  BucketJqOptions options;
  options.num_buckets = num_buckets;
  BucketJqStats stats;
  const double estimate = EstimateJq(jury, alpha, options, &stats).value();

  EXPECT_LE(estimate, exact + 1e-9) << "estimate must not exceed JQ";
  EXPECT_LE(exact - estimate, stats.error_bound + 1e-9)
      << "n=" << n << " buckets=" << num_buckets;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BucketGuaranteeTest,
    ::testing::Combine(::testing::Values(2, 3, 5, 8, 11),
                       ::testing::Values(10, 50, 200),
                       ::testing::Values(0.3, 0.5, 0.8),
                       ::testing::Values(1, 2)));

/// Pruning and backend choice are pure optimizations: results identical.
class BucketEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BucketEquivalenceTest, PruningDoesNotChangeTheEstimate) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 104729 +
          static_cast<std::uint64_t>(n));
  const Jury jury = RandomJury(&rng, n, 0.5, 0.97);
  BucketJqOptions with = {};
  BucketJqOptions without = {};
  without.enable_pruning = false;
  EXPECT_NEAR(EstimateJq(jury, 0.5, with).value(),
              EstimateJq(jury, 0.5, without).value(), 1e-10);
}

TEST_P(BucketEquivalenceTest, DenseAndSparseBackendsAgree) {
  const auto [n, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 1299709 +
          static_cast<std::uint64_t>(n));
  const Jury jury = RandomJury(&rng, n, 0.5, 0.97);
  BucketJqOptions dense = {};
  dense.backend = BucketBackend::kDense;
  BucketJqOptions sparse = {};
  sparse.backend = BucketBackend::kSparse;
  EXPECT_NEAR(EstimateJq(jury, 0.5, dense).value(),
              EstimateJq(jury, 0.5, sparse).value(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BucketEquivalenceTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 7, 11, 15),
                       ::testing::Values(1, 2, 3)));

TEST(BucketJqTest, ErrorShrinksWithMoreBuckets) {
  Rng rng(99);
  const Jury jury = RandomJury(&rng, 9, 0.5, 0.97);
  const double exact = ExactJqBv(jury, 0.5).value();
  double prev_error = 1.0;
  for (int buckets : {5, 20, 100, 500}) {
    BucketJqOptions options;
    options.num_buckets = buckets;
    const double err = exact - EstimateJq(jury, 0.5, options).value();
    EXPECT_GE(err, -1e-9);
    EXPECT_LE(err, prev_error + 1e-9);
    prev_error = err;
  }
  EXPECT_LT(prev_error, 1e-4);
}

TEST(BucketJqTest, LowQualityWorkersAreNormalized) {
  // §3.3: q and 1-q juries have identical JQ under BV.
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> qs, flipped;
    for (int i = 0; i < 6; ++i) {
      const double q = rng.Uniform(0.5, 0.95);
      qs.push_back(q);
      flipped.push_back(i % 2 == 0 ? 1.0 - q : q);
    }
    EXPECT_NEAR(EstimateJq(Jury::FromQualities(qs), 0.5).value(),
                EstimateJq(Jury::FromQualities(flipped), 0.5).value(), 1e-10);
  }
}

TEST(BucketJqTest, PriorMatchesPseudoWorkerConstruction) {
  // Theorem 3 is the implementation (ApplyPrior); cross-check the public
  // API against the manual construction.
  Rng rng(103);
  for (int trial = 0; trial < 20; ++trial) {
    const Jury jury = RandomJury(&rng, 5, 0.5, 0.95);
    const double alpha = rng.Uniform(0.05, 0.95);
    Jury manual = jury;
    manual.Add({"pseudo", alpha, 0.0});
    EXPECT_NEAR(EstimateJq(jury, alpha).value(),
                EstimateJq(manual, 0.5).value(), 1e-10);
  }
}

TEST(BucketJqTest, StatsAreFilled) {
  BucketJqStats stats;
  Rng rng(107);
  const Jury jury = RandomJury(&rng, 8, 0.55, 0.95);
  ASSERT_TRUE(EstimateJq(jury, 0.5, {}, &stats).ok());
  EXPECT_GT(stats.delta, 0.0);
  EXPECT_GT(stats.error_bound, 0.0);
  EXPECT_GT(stats.keys_expanded, 0u);
  EXPECT_FALSE(stats.high_quality_shortcut);
}

TEST(BucketJqTest, PruningReducesWork) {
  Rng rng(109);
  const Jury jury = RandomJury(&rng, 60, 0.55, 0.95);
  BucketJqOptions pruned;
  pruned.backend = BucketBackend::kSparse;
  BucketJqOptions unpruned = pruned;
  unpruned.enable_pruning = false;
  BucketJqStats with_stats, without_stats;
  ASSERT_TRUE(EstimateJq(jury, 0.5, pruned, &with_stats).ok());
  ASSERT_TRUE(EstimateJq(jury, 0.5, unpruned, &without_stats).ok());
  EXPECT_GT(with_stats.keys_pruned, 0u);
  EXPECT_LT(with_stats.keys_expanded, without_stats.keys_expanded);
}

TEST(BucketJqTest, LargeJuryAgreesWithMonteCarlo) {
  // Exact enumeration is impossible at n = 60; cross-check against MC.
  Rng rng(113);
  const Jury jury = RandomJury(&rng, 60, 0.5, 0.9);
  const double estimate = EstimateJq(jury, 0.5).value();
  auto bv = MakeStrategy("BV").value();
  Rng mc_rng(211);
  const double mc = MonteCarloJq(jury, *bv, 0.5, 100000, &mc_rng).value();
  EXPECT_NEAR(estimate, mc, 0.02);
}

// --------------------------------------------------------- Edge cases

TEST(BucketJqTest, SingleBucketStillUnderestimates) {
  Rng rng(211);
  BucketJqOptions coarse;
  coarse.num_buckets = 1;
  for (int trial = 0; trial < 10; ++trial) {
    const Jury jury = RandomJury(&rng, 6, 0.5, 0.95);
    const double exact = ExactJqBv(jury, 0.5).value();
    const double approx = EstimateJq(jury, 0.5, coarse).value();
    EXPECT_LE(approx, exact + 1e-9);
    EXPECT_GE(approx, 0.5 - 1e-9);  // never below a coin flip
  }
}

TEST(BucketJqTest, IdenticalQualitiesAreExact) {
  // With equal phi values every worker lands exactly on bucket numBuckets,
  // so the bucketed statistic is a rescaling of the true one: zero error.
  for (double q : {0.6, 0.75, 0.9}) {
    for (int n : {3, 7, 11}) {
      const Jury jury = Jury::FromQualities(
          std::vector<double>(static_cast<std::size_t>(n), q));
      EXPECT_NEAR(EstimateJq(jury, 0.5).value(),
                  ExactJqBv(jury, 0.5).value(), 1e-10)
          << "q=" << q << " n=" << n;
    }
  }
}

TEST(BucketJqTest, IdenticalOddJuryEqualsMajorityJq) {
  // For identical qualities and odd n, BV degenerates to MV (all weights
  // equal), so the bucket estimate must match the MV closed form.
  const Jury jury = Jury::FromQualities(std::vector<double>(9, 0.7));
  EXPECT_NEAR(EstimateJq(jury, 0.5).value(), MajorityJq(jury, 0.5).value(),
              1e-10);
}

TEST(BucketJqTest, ExtremePriorsPinTheEstimate) {
  Rng rng(223);
  const Jury jury = RandomJury(&rng, 5, 0.5, 0.9);
  BucketJqOptions options;
  options.high_quality_cutoff = 1.0;  // let the extreme prior through
  options.num_buckets = 400;
  EXPECT_GT(EstimateJq(jury, 0.999, options).value(), 0.998);
  EXPECT_GT(EstimateJq(jury, 0.001, options).value(), 0.998);
}

TEST(BucketJqTest, MixedExtremeAndWeakWorkers) {
  // One near-perfect worker among coin-flippers: JQ ~ the strong worker.
  BucketJqOptions options;
  options.high_quality_cutoff = 1.0;
  options.num_buckets = 800;
  const Jury jury = Jury::FromQualities({0.98, 0.5, 0.5, 0.5, 0.5});
  const double exact = ExactJqBv(jury, 0.5).value();
  EXPECT_NEAR(EstimateJq(jury, 0.5, options).value(), exact, 1e-3);
  EXPECT_NEAR(exact, 0.98, 1e-9);
}

TEST(BucketKeyDistributionBatchTest, FusedMassMatchesCopyConvolveSweep) {
  // The fused greedy-scan kernel must equal {copy; Convolve; PositiveMass}
  // bit for bit, across committed spans, candidate buckets larger and
  // smaller than the span, and the b == 0 no-op case.
  Rng rng(47);
  for (int committed : {0, 1, 3, 8, 20}) {
    BucketKeyDistribution dist;
    for (int i = 0; i < committed; ++i) {
      dist.Convolve(1 + static_cast<std::int64_t>(rng.UniformInt(40)),
                    rng.Uniform(0.5, 1.0));
    }
    std::vector<std::int64_t> bs;
    std::vector<double> qs;
    for (int j = 0; j < 25; ++j) {
      bs.push_back(static_cast<std::int64_t>(rng.UniformInt(60)));  // incl. 0
      qs.push_back(rng.Uniform(0.5, 1.0));
    }
    bs.push_back(0);  // exact no-op candidate
    qs.push_back(0.75);
    bs.push_back(dist.span() + 17);  // bucket beyond the committed span
    qs.push_back(0.9);
    std::vector<double> fused(bs.size());
    dist.ConvolvePositiveMassBatch(bs.data(), qs.data(), bs.size(),
                                   fused.data());
    for (std::size_t j = 0; j < bs.size(); ++j) {
      BucketKeyDistribution copy = dist;
      copy.Convolve(bs[j], qs[j]);
      EXPECT_EQ(fused[j], copy.PositiveMass())
          << "committed=" << committed << " j=" << j << " b=" << bs[j];
    }
  }
}

TEST(ApplyPriorTest, UninformativePriorIsIdentity) {
  const Jury jury = Figure2Jury();
  EXPECT_EQ(ApplyPrior(jury, 0.5).size(), jury.size());
  const Jury with = ApplyPrior(jury, 0.7);
  ASSERT_EQ(with.size(), jury.size() + 1);
  EXPECT_EQ(with.worker(3).id, kPriorWorkerId);
  EXPECT_DOUBLE_EQ(with.worker(3).quality, 0.7);
  EXPECT_DOUBLE_EQ(with.worker(3).cost, 0.0);
}

}  // namespace
}  // namespace jury
