#include <cstdint>
#include <set>

#include "gtest/gtest.h"
#include "model/jury.h"
#include "model/prior.h"
#include "model/votes.h"
#include "model/worker.h"

namespace jury {
namespace {

// ---------------------------------------------------------------- Worker

TEST(WorkerTest, ValidatesRanges) {
  EXPECT_TRUE(ValidateWorker({"a", 0.7, 1.0}).ok());
  EXPECT_TRUE(ValidateWorker({"b", 0.0, 0.0}).ok());
  EXPECT_TRUE(ValidateWorker({"c", 1.0, 0.0}).ok());
  EXPECT_FALSE(ValidateWorker({"d", -0.1, 1.0}).ok());
  EXPECT_FALSE(ValidateWorker({"e", 1.1, 1.0}).ok());
  EXPECT_FALSE(ValidateWorker({"f", 0.7, -1.0}).ok());
}

TEST(WorkerTest, EffectiveQualityClampsEndpoints) {
  EXPECT_GT(EffectiveQuality(0.0), 0.0);
  EXPECT_LT(EffectiveQuality(1.0), 1.0);
  EXPECT_DOUBLE_EQ(EffectiveQuality(0.7), 0.7);
}

// ----------------------------------------------------------------- Votes

TEST(VotesTest, FromMaskExpandsBits) {
  const Votes v = VotesFromMask(0b101, 3);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 0);
  EXPECT_EQ(v[2], 1);
}

TEST(VotesTest, CountsAndComplement) {
  const Votes v{1, 0, 0, 1, 0};
  EXPECT_EQ(CountZeros(v), 3);
  EXPECT_EQ(CountOnes(v), 2);
  const Votes c = Complement(v);
  EXPECT_EQ(CountZeros(c), 2);
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NE(v[i], c[i]);
}

TEST(VotesTest, AllMasksAreDistinct) {
  std::set<std::string> seen;
  for (std::uint64_t m = 0; m < 16; ++m) {
    std::string key;
    for (std::uint8_t v : VotesFromMask(m, 4)) {
      key += static_cast<char>('0' + v);
    }
    seen.insert(key);
  }
  EXPECT_EQ(seen.size(), 16u);
}

// ------------------------------------------------------------------ Jury

TEST(JuryTest, FromQualitiesBuildsZeroCostWorkers) {
  const Jury jury = Jury::FromQualities({0.9, 0.6});
  ASSERT_EQ(jury.size(), 2u);
  EXPECT_DOUBLE_EQ(jury.worker(0).quality, 0.9);
  EXPECT_DOUBLE_EQ(jury.worker(1).quality, 0.6);
  EXPECT_DOUBLE_EQ(jury.TotalCost(), 0.0);
}

TEST(JuryTest, TotalCostSums) {
  Jury jury;
  jury.Add({"a", 0.7, 5.0});
  jury.Add({"b", 0.8, 6.0});
  jury.Add({"c", 0.75, 3.0});
  EXPECT_DOUBLE_EQ(jury.TotalCost(), 14.0);
}

TEST(JuryTest, MinMaxQuality) {
  const Jury jury = Jury::FromQualities({0.9, 0.6, 0.75});
  EXPECT_DOUBLE_EQ(jury.MinQuality(), 0.6);
  EXPECT_DOUBLE_EQ(jury.MaxQuality(), 0.9);
}

TEST(JuryTest, ValidateRejectsBadMember) {
  Jury jury;
  jury.Add({"a", 1.5, 0.0});
  EXPECT_FALSE(jury.Validate().ok());
}

TEST(JuryTest, QualitiesAlignedWithWorkers) {
  const Jury jury = Jury::FromQualities({0.5, 0.6, 0.7});
  const auto qs = jury.qualities();
  ASSERT_EQ(qs.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(qs[i], jury.worker(i).quality);
  }
}

// --------------------------------------------------- Normalization §3.3

TEST(NormalizeTest, FlipsOnlyLowQualityWorkers) {
  const Jury jury = Jury::FromQualities({0.3, 0.5, 0.8});
  const NormalizedJury norm = Normalize(jury);
  EXPECT_DOUBLE_EQ(norm.jury.worker(0).quality, 0.7);
  EXPECT_DOUBLE_EQ(norm.jury.worker(1).quality, 0.5);
  EXPECT_DOUBLE_EQ(norm.jury.worker(2).quality, 0.8);
  EXPECT_TRUE(norm.flipped[0]);
  EXPECT_FALSE(norm.flipped[1]);
  EXPECT_FALSE(norm.flipped[2]);
}

TEST(NormalizeTest, TranslateVotesFlipsMarkedPositions) {
  const Jury jury = Jury::FromQualities({0.2, 0.9});
  const NormalizedJury norm = Normalize(jury);
  const Votes translated = norm.TranslateVotes({1, 1});
  EXPECT_EQ(translated[0], 0);  // flipped worker
  EXPECT_EQ(translated[1], 1);  // untouched
}

TEST(NormalizeTest, AllQualitiesAtLeastHalfAfter) {
  const Jury jury = Jury::FromQualities({0.1, 0.2, 0.49, 0.5, 0.51, 0.99});
  const NormalizedJury norm = Normalize(jury);
  for (const Worker& w : norm.jury.workers()) {
    EXPECT_GE(w.quality, 0.5);
  }
}

// ----------------------------------------------------------------- Prior

TEST(PriorTest, ValidatesRange) {
  EXPECT_TRUE(ValidateAlpha(0.0).ok());
  EXPECT_TRUE(ValidateAlpha(0.5).ok());
  EXPECT_TRUE(ValidateAlpha(1.0).ok());
  EXPECT_FALSE(ValidateAlpha(-0.1).ok());
  EXPECT_FALSE(ValidateAlpha(1.1).ok());
}

TEST(PriorTest, UninformativeDetection) {
  EXPECT_TRUE(IsUninformativeAlpha(0.5));
  EXPECT_FALSE(IsUninformativeAlpha(0.7));
}

}  // namespace
}  // namespace jury
