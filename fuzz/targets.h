#ifndef JURYOPT_FUZZ_TARGETS_H_
#define JURYOPT_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>

/// \brief The structured fuzz targets over the public surface.
///
/// Each target consumes arbitrary bytes and exercises one attack
/// surface; the contract under test is uniform: *every* input outcome is
/// a `Status` (or a successful solve), never an abort, never UB. The
/// same functions back two harnesses:
///
///  * the libFuzzer entry points in `fuzz/fuzz_*_main.cc`, built only
///    under `-DJURYOPT_ENABLE_FUZZERS=ON` (clang's `-fsanitize=fuzzer`);
///  * `tests/fuzz_corpus_test.cc`, a plain gtest that replays the
///    checked-in seed corpus (`tests/corpus/`) deterministically in
///    every build — including the ASAN and UBSAN CI jobs — so corpus
///    regressions are caught without a fuzzing toolchain.
///
/// Targets clamp *valid but expensive* knobs (restart counts, node
/// budgets, bucket counts) before solving, for throughput; clamping
/// never masks a crash class, because the unclamped values still flow
/// through parsing and `Validate()` — the layers where hostile input is
/// rejected.
namespace jury::fuzz {

/// Bytes -> `Json::Parse`. On success, additionally asserts the
/// round-trip property: `Dump(Parse(Dump(doc)))` is byte-identical to
/// `Dump(doc)` (the canonical-form invariant the golden traces rely on).
void FuzzJson(const std::uint8_t* data, std::size_t size);

/// Bytes -> `SolveRequest::FromJsonText` -> `Validate` -> `Solve` on a
/// tiny planned pool.
void FuzzSolveRequest(const std::uint8_t* data, std::size_t size);

/// Bytes -> worker quality/cost columns (raw IEEE doubles, so NaN, the
/// infinities, negatives, and out-of-range values all occur) ->
/// `PoolPlanContext::Plan` -> a solve when the pool validates.
void FuzzPoolSnapshot(const std::uint8_t* data, std::size_t size);

}  // namespace jury::fuzz

#endif  // JURYOPT_FUZZ_TARGETS_H_
