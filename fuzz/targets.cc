#include "fuzz/targets.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "api/solve.h"
#include "core/annealing.h"
#include "model/pool_snapshot.h"
#include "model/worker.h"
#include "util/check.h"
#include "util/json.h"
#include "util/result.h"

namespace jury::fuzz {

namespace {

using api::PoolPlanContext;
using api::SolveReport;
using api::SolveRequest;

/// The fixed tiny pool the request target solves against: small enough
/// that any accepted request finishes fast, varied enough (a free
/// worker, a coin-flip worker, a strong expensive one) to reach the
/// interesting solver branches.
std::vector<Worker> TinyPool() {
  return {
      {"free", 0.70, 0.0}, {"coin", 0.50, 1.0}, {"strong", 0.95, 4.0},
      {"weak", 0.35, 0.5}, {"solid", 0.80, 2.0},
  };
}

/// Throughput clamps for valid-but-expensive knobs. The unclamped
/// values already went through `FromJson` + `Validate`, so rejection
/// paths are fully exercised; this only bounds the *accepted* work.
void ClampAnnealing(AnnealingOptions* annealing) {
  annealing->num_restarts = std::min<std::size_t>(annealing->num_restarts, 8);
  if (annealing->epsilon < 1e-12) annealing->epsilon = 1e-12;
  if (annealing->initial_temperature > 1e6) {
    annealing->initial_temperature = 1e6;
  }
  if (annealing->cooling_factor > 0.99) annealing->cooling_factor = 0.5;
  if (annealing->max_polish_moves != AnnealingOptions::kAutoPolishMoves) {
    annealing->max_polish_moves =
        std::min<std::size_t>(annealing->max_polish_moves, 64);
  }
}

void ClampRequest(SolveRequest* request) {
  auto& tuning = request->tuning;
  ClampAnnealing(&tuning.annealing);
  ClampAnnealing(&tuning.optjs.annealing);
  ClampAnnealing(&tuning.mvjs.annealing);
  tuning.bucket.num_buckets = std::min(tuning.bucket.num_buckets, 10'000);
  tuning.optjs.bucket.num_buckets =
      std::min(tuning.optjs.bucket.num_buckets, 10'000);
  tuning.branch_bound.max_nodes =
      std::min<std::size_t>(tuning.branch_bound.max_nodes, 100'000);
  // A process-stats snapshot per input is pure overhead here.
  request->collect_process_stats = false;
}

}  // namespace

void FuzzJson(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  Result<Json> parsed = Json::Parse(text);
  if (!parsed.ok()) return;
  // Canonical-form round trip: dumping and reparsing any accepted
  // document must be byte-stable (the golden traces compare these
  // bytes). A violation is a real bug, so it *should* crash the fuzzer.
  const std::string dumped = parsed.value().Dump();
  Result<Json> reparsed = Json::Parse(dumped);
  JURY_CHECK(reparsed.ok()) << "canonical dump failed to reparse: " << dumped;
  JURY_CHECK(reparsed.value().Dump() == dumped)
      << "canonical dump is not a fixed point: " << dumped;
}

void FuzzSolveRequest(const std::uint8_t* data, std::size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  Result<SolveRequest> parsed = SolveRequest::FromJsonText(text);
  if (!parsed.ok()) return;
  SolveRequest request = std::move(parsed).value();
  ClampRequest(&request);
  Result<PoolPlanContext> planned = PoolPlanContext::Plan(TinyPool());
  JURY_CHECK(planned.ok());
  // Any outcome is fine — accepted requests solve, bad knobs surface as
  // InvalidArgument, unknown solvers as NotFound — as long as nothing
  // aborts.
  Result<SolveReport> report = planned.value().Solve(request);
  (void)report;
}

void FuzzPoolSnapshot(const std::uint8_t* data, std::size_t size) {
  // Route 1: the binary `PoolSnapshot` wire format. Truncated headers,
  // bit-flipped checksums, oversized counts, foreign endianness, and
  // column values violating the numeric invariants must all surface as a
  // `Status` — never an abort. An input that *passes* the full
  // validation is as trusted as a validated CSV pool, so planning and a
  // frontier-assisted greedy solve over it must succeed.
  Result<PoolSnapshot> snapshot = PoolSnapshot::FromBytes(data, size);
  if (snapshot.ok() && snapshot.value().size() > 0) {
    Result<PoolPlanContext> from_snapshot =
        PoolPlanContext::PlanFromSnapshot(std::move(snapshot).value());
    JURY_CHECK(from_snapshot.ok())
        << "plan failed on a validated snapshot: "
        << from_snapshot.status().ToString();
    SolveRequest request;
    request.solver = "greedy-mg";
    request.budget = 8.0;
    request.tuning.greedy.frontier_k = 4;  // exercises the sharded pool
    Result<SolveReport> report = from_snapshot.value().Solve(request);
    JURY_CHECK(report.ok()) << "greedy solve failed on a validated "
                            << "snapshot pool: " << report.status().ToString();
  }
  // Route 2 (legacy): reinterpret the bytes as packed little-endian
  // (quality, cost) double pairs: raw IEEE bit patterns, so NaNs (quiet
  // and signaling), infinities, denormals, negative zeros, and wildly
  // out-of-range magnitudes all reach the validation layer.
  std::vector<Worker> pool;
  const std::size_t pairs = std::min<std::size_t>(size / 16, 256);
  pool.reserve(pairs);
  for (std::size_t i = 0; i < pairs; ++i) {
    double quality = 0.0;
    double cost = 0.0;
    std::memcpy(&quality, data + 16 * i, sizeof(quality));
    std::memcpy(&cost, data + 16 * i + 8, sizeof(cost));
    pool.emplace_back("w" + std::to_string(i), quality, cost);
  }
  Result<PoolPlanContext> planned = PoolPlanContext::Plan(std::move(pool));
  if (!planned.ok()) return;
  // The pool validated, so it is made of honest workers; a cheap greedy
  // solve exercises the columnar view construction and a full scoring
  // pass over it.
  SolveRequest request;
  request.solver = "greedy-quality";
  request.budget = 8.0;
  Result<SolveReport> report = planned.value().Solve(request);
  JURY_CHECK(report.ok()) << "greedy solve failed on a validated pool: "
                          << report.status().ToString();
}

}  // namespace jury::fuzz
