// libFuzzer entry point over `Json::Parse` (see fuzz/targets.h). Built
// only under -DJURYOPT_ENABLE_FUZZERS=ON with a clang toolchain:
//   ./fuzz_json tests/corpus/json
#include <cstddef>
#include <cstdint>

#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  jury::fuzz::FuzzJson(data, size);
  return 0;
}
