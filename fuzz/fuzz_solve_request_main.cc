// libFuzzer entry point over the request surface: bytes ->
// `SolveRequest::FromJsonText` -> `Validate` -> `Solve` on a tiny pool
// (see fuzz/targets.h). Built only under -DJURYOPT_ENABLE_FUZZERS=ON:
//   ./fuzz_solve_request tests/corpus/solve_request
#include <cstddef>
#include <cstdint>

#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  jury::fuzz::FuzzSolveRequest(data, size);
  return 0;
}
