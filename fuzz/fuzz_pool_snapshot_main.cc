// libFuzzer entry point over pool-snapshot construction: bytes -> raw
// IEEE quality/cost columns -> `PoolPlanContext::Plan` (see
// fuzz/targets.h). Built only under -DJURYOPT_ENABLE_FUZZERS=ON:
//   ./fuzz_pool_snapshot tests/corpus/pool_snapshot
#include <cstddef>
#include <cstdint>

#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  jury::fuzz::FuzzPoolSnapshot(data, size);
  return 0;
}
