// Sentiment-analysis campaign: the paper's §6.2 scenario end-to-end.
//
// A provider wants 600 tweets labelled positive/not-positive. This example
// simulates the AMT campaign, estimates worker qualities from their
// answering history, then — for each new question — selects the
// budget-optimal jury among the workers available and aggregates their
// votes with Bayesian Voting, finally comparing against the ground truth.
//
// Build & run:  ./build/examples/sentiment_campaign

#include <iostream>

#include "core/optjs.h"
#include "crowd/sentiment.h"
#include "strategy/bayesian.h"
#include "strategy/majority.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace jury;

  // 1. Run the (simulated) AMT campaign and learn worker qualities.
  Rng rng(7);
  const auto dataset =
      crowd::MakeSentimentDataset(crowd::SentimentConfig{}, &rng).value();
  std::cout << "Campaign: 600 tasks, 128 workers, mean estimated quality "
            << Format(dataset.mean_estimated_quality, 3) << "\n\n";

  // 2. For each question: the 20 workers who answered it are the candidate
  //    pool; pick the best jury under a $0.5 budget and aggregate only the
  //    selected workers' votes.
  const BayesianVoting bv;
  const MajorityVoting mv;
  int bv_correct = 0;
  int mv_all_correct = 0;
  double total_spent = 0.0;
  const std::size_t num_questions = 200;  // a slice, for speed
  for (std::size_t q = 0; q < num_questions; ++q) {
    const auto& task = dataset.campaign.tasks[q];

    JspInstance instance;
    instance.budget = 0.5;
    instance.alpha = 0.5;
    for (const auto& answer : task.answers) {
      instance.candidates.emplace_back(
          std::to_string(answer.worker),
          dataset.estimated_quality[answer.worker],
          rng.TruncatedGaussian(0.05, 0.2, 0.01, 1e9));
    }
    Rng solver_rng = rng.Fork();
    const auto solution = SolveOptjs(instance, &solver_rng).value();
    total_spent += solution.cost;

    // Aggregate the selected jurors' actual votes with BV.
    Jury jury;
    Votes votes;
    for (std::size_t idx : solution.selected) {
      jury.Add(instance.candidates[idx]);
      votes.push_back(static_cast<std::uint8_t>(task.answers[idx].vote));
    }
    if (!jury.empty()) {
      const int decided = bv.ProbZero(jury, votes, 0.5) >= 1.0 ? 0 : 1;
      bv_correct += (decided == task.truth);
    }

    // Baseline: majority over ALL 20 votes (pay everyone).
    Jury all;
    Votes all_votes;
    for (const auto& answer : task.answers) {
      all.Add({"w", 0.7, 0.0});
      all_votes.push_back(static_cast<std::uint8_t>(answer.vote));
    }
    const int mv_decided = mv.ProbZero(all, all_votes, 0.5) >= 1.0 ? 0 : 1;
    mv_all_correct += (mv_decided == task.truth);
  }

  Table table({"approach", "accuracy", "votes bought per task"});
  table.AddRow({"OPTJS jury + BV",
                FormatPercent(static_cast<double>(bv_correct) /
                              static_cast<double>(num_questions)),
                "selected subset (avg $" +
                    Format(total_spent / static_cast<double>(num_questions),
                           3) +
                    ")"});
  table.AddRow({"all 20 workers + MV",
                FormatPercent(static_cast<double>(mv_all_correct) /
                              static_cast<double>(num_questions)),
                "all 20"});
  std::cout << table.ToString()
            << "\nA budget-selected jury with Bayesian aggregation rivals "
               "(or beats) paying every worker and taking the majority.\n";
  return 0;
}
