// Budget planner: marginal-quality analysis over a fine budget grid.
//
// The paper's Fig. 1 narrative — "increasing the budget from 15 to 20
// units buys only ~2.5% more quality" — generalized into a tool: sweep
// budgets, print JQ and the marginal quality per extra unit of money, and
// recommend the knee of the curve.
//
// Build & run:  ./build/examples/budget_planner [num_workers] [seed]

#include <cstdlib>
#include <iostream>

#include "core/budget_table.h"
#include "crowd/pool.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace jury;
  const int num_workers = argc > 1 ? std::atoi(argv[1]) : 12;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 99;

  Rng rng(seed);
  crowd::PoolConfig config;
  config.num_workers = num_workers;
  const auto pool = crowd::GeneratePool(config, &rng).value();

  std::cout << "Candidate pool:\n";
  Table workers({"id", "quality", "cost"});
  for (const auto& w : pool) {
    workers.AddRow({w.id, Format(w.quality, 3), Format(w.cost, 3)});
  }
  std::cout << workers.ToString() << "\n";

  std::vector<double> budgets;
  for (double b = 0.1; b <= 1.01; b += 0.1) budgets.push_back(b);
  Rng solver_rng = rng.Fork();
  const auto rows =
      BuildBudgetQualityTable(pool, budgets, 0.5, &solver_rng).value();

  Table plan({"budget", "jury", "required", "JQ", "marginal JQ / $"});
  double knee_budget = rows.front().budget;
  double best_marginal = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double marginal = 0.0;
    if (i > 0) {
      const double dq = rows[i].jq - rows[i - 1].jq;
      const double db = rows[i].budget - rows[i - 1].budget;
      marginal = dq / db;
      if (marginal > best_marginal) {
        best_marginal = marginal;
        knee_budget = rows[i].budget;
      }
    }
    plan.AddRow({Format(rows[i].budget, 1), rows[i].jury_ids,
                 Format(rows[i].required, 3), FormatPercent(rows[i].jq),
                 i == 0 ? "-" : FormatPercent(marginal, 1)});
  }
  std::cout << plan.ToString();
  std::cout << "\nSteepest quality-per-dollar step ends at budget "
            << Format(knee_budget, 1)
            << "; beyond the flat tail, extra money buys little (the "
               "paper's 15-vs-20 argument).\n";
  return 0;
}
