// jury_cli: budget-quality planning for a worker pool loaded from CSV.
//
// Usage:
//   ./build/examples/jury_cli workers.csv [alpha] [budget...]
//
// workers.csv columns: id,quality,cost  (header optional, '#' comments ok)
// With no arguments, runs on the paper's Figure-1 pool as a demo.

#include <cstdlib>
#include <iostream>

#include "core/budget_table.h"
#include "model/worker_io.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace jury;

  std::vector<Worker> workers;
  if (argc > 1) {
    auto loaded = LoadWorkersCsv(argv[1]);
    if (!loaded.ok()) {
      std::cerr << "error: " << loaded.status() << "\n";
      return 1;
    }
    workers = std::move(loaded).value();
  } else {
    std::cout << "(no CSV given; using the paper's Figure-1 pool)\n";
    workers = {{"A", 0.77, 9.0}, {"B", 0.70, 5.0}, {"C", 0.80, 6.0},
               {"D", 0.65, 7.0}, {"E", 0.60, 5.0}, {"F", 0.60, 2.0},
               {"G", 0.75, 3.0}};
  }
  if (workers.empty()) {
    std::cerr << "error: empty worker pool\n";
    return 1;
  }

  const double alpha = argc > 2 ? std::atof(argv[2]) : 0.5;
  std::vector<double> budgets;
  for (int i = 3; i < argc; ++i) budgets.push_back(std::atof(argv[i]));
  if (budgets.empty()) {
    // Default grid: 10 steps up to the full pool cost.
    double total = 0.0;
    for (const Worker& w : workers) total += w.cost;
    for (int step = 1; step <= 10; ++step) budgets.push_back(total * step / 10);
  }

  std::cout << "Pool: " << workers.size() << " workers, prior alpha = "
            << alpha << "\n\n";
  Rng rng(20150323);
  auto rows = BuildBudgetQualityTable(workers, budgets, alpha, &rng);
  if (!rows.ok()) {
    std::cerr << "error: " << rows.status() << "\n";
    return 1;
  }
  std::cout << FormatBudgetQualityTable(rows.value());
  return 0;
}
