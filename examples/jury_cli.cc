// jury_cli: jury planning for a worker pool loaded from CSV, through the
// unified solve API.
//
// Usage:
//   ./build/jury_cli [workers.csv] [alpha] [budget...]          budget table
//   ./build/jury_cli [workers.csv] --solver=NAME [flags] [budget...]
//   ./build/jury_cli --list-solvers
//
// Flags:
//   --solver=NAME    run one registry solver per budget (SolverRegistry
//                    names; see --list-solvers) instead of the table;
//                    bare numbers are then all budgets
//   --alpha=A        task prior (default 0.5; with this flag set, bare
//                    numbers are all budgets)
//   --seed=S         rng seed for the stochastic solvers (default 20150323)
//   --deadline-ms=D  wall-clock deadline per solve; an expired solve still
//                    succeeds with its best-so-far jury (anytime result,
//                    "terminated_early": true under --json)
//   --max-work-units=W  deterministic per-strand work budget per solve
//                    (0 = unlimited); same anytime semantics, but the
//                    stop point is reproducible
//   --json           print each SolveReport as one JSON line
//   --stats          after the run, print the process-wide stats registry
//                    (scheduler/eval/fusion/plan/pool counters) as one JSON
//                    line; the pool source shows up as `pool.csv_loads` vs
//                    `pool.snapshot_loads`
//   --pool-snapshot=PATH  plan from a binary pool snapshot instead of CSV
//                    (registry mode only: requires --solver). Loading maps
//                    the columns read-only and skips both CSV parsing and
//                    per-worker re-validation
//   --save-snapshot=PATH  after planning (registry mode), write the pool
//                    as a binary snapshot and continue
//   --frontier-k=K   opt the solve into candidate-frontier pre-selection
//                    (per-shard top-K slates; exact by construction for
//                    greedy/annealing, ordering-only for branch-bound)
//   --list-solvers   print the registry names, one per line, and exit
//
// workers.csv columns: id,quality,cost  (header optional, '#' comments ok)
// With no CSV, runs on the paper's Figure-1 pool as a demo.
//
// Robustness contract (enforced by scripts/cli_robustness_test.sh):
// malformed flags, unreadable or truncated files, unknown solver names,
// and bad numeric values all exit non-zero with an error on stderr —
// never an abort.

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/registry.h"
#include "api/solve.h"
#include "core/budget_table.h"
#include "model/pool_snapshot.h"
#include "model/worker_io.h"
#include "util/cancellation.h"
#include "util/rng.h"
#include "util/stats_registry.h"

namespace {

struct CliArgs {
  std::string csv_path;
  std::string solver;
  std::string pool_snapshot;
  std::string save_snapshot;
  double alpha = 0.5;
  std::uint64_t seed = 20150323;
  double deadline_ms = 0.0;
  std::uint64_t max_work_units = 0;
  std::uint64_t frontier_k = 0;
  bool json = false;
  bool stats = false;
  bool list_solvers = false;
  std::vector<double> budgets;
  bool alpha_flag_seen = false;
  bool alpha_positional_seen = false;
};

/// True iff `arg` parses as a double in its entirety — the test that
/// separates numeric positionals (alpha/budgets) from file paths, so a
/// digit-leading CSV name like "2024_pool.csv" is still a path.
bool IsNumber(const char* arg, double* value) {
  char* end = nullptr;
  *value = std::strtod(arg, &end);
  return end != arg && *end == '\0';
}

/// Full-string parse of a numeric flag value: trailing garbage
/// ("--alpha=0.5x") is an error, not a silent truncation.
bool ParseDoubleFlag(std::string_view flag, std::string_view text,
                     double* value) {
  const std::string copy(text);
  if (!copy.empty() && IsNumber(copy.c_str(), value)) return true;
  std::cerr << "error: " << flag << " needs a number, got \"" << text
            << "\"\n";
  return false;
}

bool ParseUint64Flag(std::string_view flag, std::string_view text,
                     std::uint64_t* value) {
  const std::string copy(text);
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(copy.c_str(), &end, 10);
  if (!copy.empty() && copy[0] != '-' && end == copy.c_str() + copy.size() &&
      errno == 0) {
    *value = parsed;
    return true;
  }
  std::cerr << "error: " << flag << " needs a non-negative integer, got \""
            << text << "\"\n";
  return false;
}

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    double value = 0.0;
    if (arg == "--list-solvers") {
      args->list_solvers = true;
    } else if (arg == "--json") {
      args->json = true;
    } else if (arg.rfind("--solver=", 0) == 0) {
      args->solver = std::string(arg.substr(9));
    } else if (arg == "--stats") {
      args->stats = true;
    } else if (arg.rfind("--alpha=", 0) == 0) {
      if (!ParseDoubleFlag("--alpha", arg.substr(8), &args->alpha)) {
        return false;
      }
      args->alpha_flag_seen = true;
    } else if (arg.rfind("--seed=", 0) == 0) {
      if (!ParseUint64Flag("--seed", arg.substr(7), &args->seed)) {
        return false;
      }
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!ParseDoubleFlag("--deadline-ms", arg.substr(14),
                           &args->deadline_ms) ||
          args->deadline_ms < 0.0) {
        if (args->deadline_ms < 0.0) {
          std::cerr << "error: --deadline-ms must be non-negative\n";
        }
        return false;
      }
    } else if (arg.rfind("--max-work-units=", 0) == 0) {
      if (!ParseUint64Flag("--max-work-units", arg.substr(17),
                           &args->max_work_units)) {
        return false;
      }
    } else if (arg.rfind("--pool-snapshot=", 0) == 0) {
      args->pool_snapshot = std::string(arg.substr(16));
    } else if (arg.rfind("--save-snapshot=", 0) == 0) {
      args->save_snapshot = std::string(arg.substr(16));
    } else if (arg.rfind("--frontier-k=", 0) == 0) {
      if (!ParseUint64Flag("--frontier-k", arg.substr(13),
                           &args->frontier_k)) {
        return false;
      }
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "error: unknown flag " << arg << "\n";
      return false;
    } else if (!IsNumber(argv[i], &value)) {
      if (!args->csv_path.empty()) {
        std::cerr << "error: more than one CSV path (" << args->csv_path
                  << ", " << arg << ")\n";
        return false;
      }
      args->csv_path = std::string(arg);
    } else if (!args->alpha_flag_seen && !args->alpha_positional_seen &&
               args->budgets.empty() && args->solver.empty()) {
      // Legacy positional form: csv [alpha] [budget...]. An explicit
      // --alpha (or --solver mode) routes every number to the budgets.
      args->alpha = value;
      args->alpha_positional_seen = true;
    } else {
      args->budgets.push_back(value);
    }
  }
  return true;
}

/// The run itself, factored out so `main` can append the --stats line on
/// every exit path.
int RunCli(const CliArgs& args_in) {
  using namespace jury;
  CliArgs args = args_in;

  if (args.list_solvers) {
    for (const std::string& name : api::RegisteredSolverNames()) {
      std::cout << name << "\n";
    }
    return 0;
  }

  const bool snapshot_mode = !args.pool_snapshot.empty();
  if (snapshot_mode && args.solver.empty()) {
    std::cerr << "error: --pool-snapshot requires --solver (the snapshot "
                 "path serves the registry mode)\n";
    return 1;
  }
  if (snapshot_mode && !args.csv_path.empty()) {
    std::cerr << "error: give either a CSV path or --pool-snapshot, not "
                 "both\n";
    return 1;
  }
  if (!args.save_snapshot.empty() && args.solver.empty()) {
    std::cerr << "error: --save-snapshot requires --solver\n";
    return 1;
  }

  std::vector<Worker> workers;
  std::optional<api::PoolPlanContext> context;
  if (snapshot_mode) {
    // The mmap fast path: the snapshot's columns become the plan's view
    // directly — no CSV parse, no per-worker re-validation (the loader
    // checksummed and range-checked everything), no column recompute.
    auto planned = api::PoolPlanContext::PlanFromSnapshot(args.pool_snapshot);
    if (!planned.ok()) {
      std::cerr << "error: " << planned.status() << "\n";
      return 1;
    }
    context.emplace(std::move(planned).value());
    if (context->num_candidates() == 0) {
      std::cerr << "error: empty worker pool\n";
      return 1;
    }
    if (args.budgets.empty()) {
      double total = 0.0;
      for (const double cost : context->view().cost()) total += cost;
      for (int step = 1; step <= 10; ++step) {
        args.budgets.push_back(total * step / 10);
      }
    }
  } else {
    if (!args.csv_path.empty()) {
      auto loaded = LoadWorkersCsv(args.csv_path);
      if (!loaded.ok()) {
        std::cerr << "error: " << loaded.status() << "\n";
        return 1;
      }
      workers = std::move(loaded).value();
    } else {
      std::cout << "(no CSV given; using the paper's Figure-1 pool)\n";
      workers = {{"A", 0.77, 9.0}, {"B", 0.70, 5.0}, {"C", 0.80, 6.0},
                 {"D", 0.65, 7.0}, {"E", 0.60, 5.0}, {"F", 0.60, 2.0},
                 {"G", 0.75, 3.0}};
    }
    if (workers.empty()) {
      std::cerr << "error: empty worker pool\n";
      return 1;
    }

    if (args.budgets.empty()) {
      // Default grid: 10 steps up to the full pool cost.
      double total = 0.0;
      for (const Worker& w : workers) total += w.cost;
      for (int step = 1; step <= 10; ++step) {
        args.budgets.push_back(total * step / 10);
      }
    }
  }

  if (args.solver.empty()) {
    // Historical default: the Fig. 1 budget-quality table. The limit
    // flags apply here too: a deadline truncates the table to the rows
    // finished in time, a work budget caps the row count
    // deterministically (and both wind down each row's inner solve).
    std::cout << "Pool: " << workers.size() << " workers, prior alpha = "
              << args.alpha << "\n\n";
    Rng rng(args.seed);
    OptjsOptions options;
    options.max_work_units = args.max_work_units;
    std::optional<CancelToken> deadline;
    if (args.deadline_ms > 0.0) {
      deadline.emplace(args.deadline_ms);
      options.cancel_token = &*deadline;
    }
    TerminationInfo termination;
    options.termination = &termination;
    auto rows = BuildBudgetQualityTable(workers, args.budgets, args.alpha,
                                        &rng, options);
    if (!rows.ok()) {
      std::cerr << "error: " << rows.status() << "\n";
      return 1;
    }
    std::cout << FormatBudgetQualityTable(rows.value());
    if (termination.terminated_early()) {
      std::cout << "(stopped early: " << StopReasonName(termination.reason)
                << "; " << rows.value().size() << " of "
                << args.budgets.size() << " rows)\n";
    }
    return 0;
  }

  // Registry path: plan the pool once, then answer one request per budget
  // against the long-lived context — the serving-layer shape.
  if (!context.has_value()) {
    // A CSV pool was already validated row-by-row by `LoadWorkersCsv` (and
    // the built-in demo pool is trivially valid), so planning skips the
    // per-worker re-validation pass — validation is hoisted to load time.
    api::PlanOptions plan_options;
    plan_options.assume_validated = true;
    auto planned = api::PoolPlanContext::Plan(std::move(workers),
                                              plan_options);
    if (!planned.ok()) {
      std::cerr << "error: " << planned.status() << "\n";
      return 1;
    }
    context.emplace(std::move(planned).value());
  }

  if (!args.save_snapshot.empty()) {
    const Status saved = PoolSnapshot::Write(
        args.save_snapshot, context->candidates(), context->view());
    if (!saved.ok()) {
      std::cerr << "error: " << saved << "\n";
      return 1;
    }
    if (!args.json) {
      std::cout << "(pool snapshot saved to " << args.save_snapshot << ")\n";
    }
  }

  std::vector<api::SolveRequest> requests;
  for (const double budget : args.budgets) {
    api::SolveRequest request;
    request.solver = args.solver;
    request.budget = budget;
    request.alpha = args.alpha;
    request.rng_seed = args.seed;
    request.deadline_ms = args.deadline_ms;
    request.max_work_units = args.max_work_units;
    if (args.frontier_k > 0) {
      const auto k = static_cast<std::size_t>(args.frontier_k);
      request.tuning.greedy.frontier_k = k;
      request.tuning.annealing.frontier_k = k;
      request.tuning.branch_bound.frontier_k = k;
    }
    requests.push_back(std::move(request));
  }
  auto reports = context->SolveMany(requests);
  if (!reports.ok()) {
    std::cerr << "error: " << reports.status() << "\n";
    return 1;
  }

  if (!args.json) {
    std::cout << "Pool: " << context->num_candidates()
              << " workers (source: " << context->pool_source()
              << "), prior alpha = " << args.alpha
              << ", solver = " << args.solver << "\n\n";
  }
  for (std::size_t i = 0; i < reports.value().size(); ++i) {
    const api::SolveReport& report = reports.value()[i];
    if (args.json) {
      std::cout << report.ToJson() << "\n";
      continue;
    }
    std::string ids = "{";
    for (std::size_t j = 0; j < report.solution.selected.size(); ++j) {
      if (j > 0) ids += ", ";
      ids += context->candidates()[report.solution.selected[j]].id;
    }
    ids += "}";
    std::cout << "B = " << requests[i].budget << ": jury " << ids
              << ", JQ = " << 100.0 * report.solution.jq << "%"
              << ", cost = " << report.solution.cost << ", "
              << report.evaluations.total() << " evals, "
              << 1e3 * report.wall_seconds << " ms";
    if (report.terminated_early) {
      std::cout << " [early: " << report.termination_reason << "]";
    }
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return 1;
  const int exit_code = RunCli(args);
  if (args.stats) {
    // Always the last stdout line, even after a failed run — the
    // counters (request_errors, parse_errors) are most interesting then.
    std::cout << jury::StatsRegistry::Global().ToJson() << "\n";
  }
  return exit_code;
}
