// Quickstart: the paper's Figure-1 walkthrough in ~50 lines.
//
//   Task: "Is Bill Gates now the CEO of Microsoft?"  (yes/no)
//   Seven candidate workers, each with a known quality and cost.
//   Goal: for each budget, the jury whose Bayesian-Voting quality is max.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "core/budget_table.h"
#include "jq/bucket.h"
#include "strategy/bayesian.h"
#include "util/rng.h"

int main() {
  using namespace jury;

  // 1. The candidate worker pool (quality = Pr[vote is correct], cost = $).
  const std::vector<Worker> workers = {
      {"A", 0.77, 9.0}, {"B", 0.70, 5.0}, {"C", 0.80, 6.0},
      {"D", 0.65, 7.0}, {"E", 0.60, 5.0}, {"F", 0.60, 2.0},
      {"G", 0.75, 3.0},
  };

  // 2. Build the budget-quality table: one optimal jury per budget.
  Rng rng(42);
  const auto rows =
      BuildBudgetQualityTable(workers, {5.0, 10.0, 15.0, 20.0},
                              /*alpha=*/0.5, &rng)
          .value();
  std::cout << "Budget-quality table (pick your trade-off):\n"
            << FormatBudgetQualityTable(rows) << "\n";

  // 3. Suppose the provider picks the 15-unit row ({B, C, G}, cost 14).
  Jury jury;
  for (const auto& w : workers) {
    if (w.id == "B" || w.id == "C" || w.id == "G") jury.Add(w);
  }
  std::cout << "Chosen jury costs " << jury.TotalCost()
            << "; predicted JQ = " << EstimateJq(jury, 0.5).value() << "\n";

  // 4. The workers vote; Bayesian Voting aggregates. Following the paper's
  //    encoding (§2.1), 1 = yes and 0 = no: B says no, C and G say yes.
  const BayesianVoting bv;
  const Votes votes{0, 1, 1};
  const int answer = bv.ProbZero(jury, votes, 0.5) >= 1.0 ? 0 : 1;
  std::cout << "Votes {B:no, C:yes, G:yes} -> BV answers: "
            << (answer == 1 ? "yes (1)" : "no (0)") << "\n";
  return 0;
}
