// Entity resolution with priors: crowdsourced record deduplication.
//
// Each task asks "do these two records refer to the same entity?" — a
// decision-making task. A similarity score from an automatic matcher gives
// the task provider a PRIOR for each pair; Theorem 3 folds that prior into
// jury selection as a free pseudo-worker, so easy pairs (extreme priors)
// need smaller juries than ambiguous ones. This is the paper's §4.5
// machinery earning money.
//
// Build & run:  ./build/examples/entity_resolution

#include <iostream>

#include "core/optjs.h"
#include "crowd/pool.h"
#include "crowd/vote_sim.h"
#include "strategy/bayesian.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace jury;
  Rng rng(2024);

  // A pool of 30 crowd workers with varied quality and price.
  crowd::PoolConfig pool_config;
  pool_config.num_workers = 30;
  const auto pool = crowd::GeneratePool(pool_config, &rng).value();

  // Record pairs with matcher similarity in [0, 1]; we read the similarity
  // as the prior that the pair does NOT match... here encoded as
  // alpha = Pr(t = 0) with 0 = "same entity" (the paper's 0/1 encoding is
  // task-defined). Extreme similarities = confident priors.
  struct Pair {
    const char* description;
    double alpha;  // Pr(same entity) from the automatic matcher
    int truth;     // 0 = same entity
  };
  const std::vector<Pair> pairs = {
      {"'IBM Corp.' vs 'International Business Machines'", 0.92, 0},
      {"'J. Smith, NYC' vs 'John Smith, New York'", 0.75, 0},
      {"'Acme Inc (2019)' vs 'Acme Incorporated'", 0.55, 0},
      {"'Jane Doe, TX' vs 'Jane Doe, AK'", 0.45, 1},
      {"'Orange SA' vs 'Orange County Supplies'", 0.12, 1},
  };

  Table table({"pair", "prior", "jury size", "spent", "predicted JQ",
               "BV answer", "truth"});
  const BayesianVoting bv;
  for (const auto& pair : pairs) {
    JspInstance instance;
    instance.candidates = pool;
    instance.budget = 0.6;
    instance.alpha = pair.alpha;
    Rng solver_rng = rng.Fork();
    const auto solution = SolveOptjs(instance, &solver_rng).value();

    // Simulate the selected jury actually answering.
    const Jury jury = solution.ToJury(instance);
    int answer;
    if (jury.empty()) {
      answer = pair.alpha >= 0.5 ? 0 : 1;  // prior decides alone
    } else {
      const Votes votes = crowd::SimulateVotes(jury, pair.truth, &rng);
      answer = bv.ProbZero(jury, votes, pair.alpha) >= 1.0 ? 0 : 1;
    }
    table.AddRow({pair.description, Format(pair.alpha, 2),
                  std::to_string(solution.selected.size()),
                  Format(solution.cost, 2), FormatPercent(solution.jq),
                  answer == 0 ? "same" : "different",
                  pair.truth == 0 ? "same" : "different"});
  }
  std::cout << table.ToString()
            << "\nConfident matcher scores (0.92, 0.12) start from a high "
               "prior-only quality, so the same budget buys a higher JQ; "
               "ambiguous pairs lean fully on the crowd.\n";
  return 0;
}
