// jury_serve: the serving-layer HTTP/JSON endpoint — one long-lived
// `PoolPlanContext` answering a stream of jury-selection queries over a
// blocking-socket epoll loop (`serve::JuryServer`).
//
// Usage:
//   ./build/jury_serve [workers.csv] [flags]
//
// Flags:
//   --port=P            listen port (default 0 = ephemeral; the bound
//                       port is printed either way)
//   --host=H            listen address (default 127.0.0.1)
//   --threads=N         solver threads per request (0 = JURYOPT_THREADS)
//   --cache-entries=N   result-cache capacity (default 1024; 0 disables)
//   --max-inflight=N    admission-control cap; beyond it /solve sheds
//                       with 503 (default 64; 0 = unlimited)
//   --deadline-ms=D     default per-request deadline; expired solves
//                       answer 504 with the partial report embedded
//   --pool-snapshot=PATH  plan from a binary pool snapshot instead of CSV
//
// With no CSV, serves the paper's Figure-1 pool as a demo.
//
// Routes: GET /healthz, GET /stats, POST /solve (SolveRequest JSON in,
// SolveReport JSON out — the same wire shape as `SolveRequest::ToJson`).
//
// Prints exactly one `listening on HOST:PORT` line to stdout once bound
// (scripts wait for it), serves until SIGTERM/SIGINT, then drains
// in-flight requests and exits 0.
//
// Robustness contract (enforced by scripts/cli_robustness_test.sh):
// malformed request bodies, unknown solvers, and oversized JSON all get
// structured `{"error":...}` responses; no request bytes can kill the
// process. Bad *flags* exit non-zero with an error on stderr.

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "api/solve.h"
#include "model/worker_io.h"
#include "serve/server.h"

namespace {

using jury::Result;
using jury::Status;
using jury::Worker;

struct ServeArgs {
  std::string csv_path;
  std::string pool_snapshot;
  jury::serve::ServeOptions options;
};

bool ParseUint(std::string_view text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - (c - '0')) / 10) return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const std::string owned(text);
  const double value = std::strtod(owned.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

Result<ServeArgs> ParseArgs(int argc, char** argv) {
  ServeArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto value_of = [&arg](std::string_view prefix) {
      return arg.substr(prefix.size());
    };
    std::uint64_t uint_value = 0;
    double double_value = 0.0;
    if (arg.rfind("--port=", 0) == 0) {
      if (!ParseUint(value_of("--port="), &uint_value) || uint_value > 65535) {
        return Status::InvalidArgument("bad --port value");
      }
      args.options.port = static_cast<int>(uint_value);
    } else if (arg.rfind("--host=", 0) == 0) {
      args.options.host = std::string(value_of("--host="));
      if (args.options.host.empty()) {
        return Status::InvalidArgument("bad --host value");
      }
    } else if (arg.rfind("--threads=", 0) == 0) {
      if (!ParseUint(value_of("--threads="), &uint_value)) {
        return Status::InvalidArgument("bad --threads value");
      }
      args.options.solve_threads = static_cast<std::size_t>(uint_value);
    } else if (arg.rfind("--cache-entries=", 0) == 0) {
      if (!ParseUint(value_of("--cache-entries="), &uint_value)) {
        return Status::InvalidArgument("bad --cache-entries value");
      }
      args.options.cache_entries = static_cast<std::size_t>(uint_value);
    } else if (arg.rfind("--max-inflight=", 0) == 0) {
      if (!ParseUint(value_of("--max-inflight="), &uint_value)) {
        return Status::InvalidArgument("bad --max-inflight value");
      }
      args.options.max_inflight = static_cast<std::size_t>(uint_value);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!ParseDouble(value_of("--deadline-ms="), &double_value) ||
          double_value < 0.0) {
        return Status::InvalidArgument("bad --deadline-ms value");
      }
      args.options.default_deadline_ms = double_value;
    } else if (arg.rfind("--pool-snapshot=", 0) == 0) {
      args.pool_snapshot = std::string(value_of("--pool-snapshot="));
    } else if (arg.rfind("--", 0) == 0) {
      return Status::InvalidArgument("unknown flag: " + std::string(arg));
    } else if (args.csv_path.empty()) {
      args.csv_path = std::string(arg);
    } else {
      return Status::InvalidArgument("unexpected argument: " +
                                     std::string(arg));
    }
  }
  return args;
}

jury::serve::JuryServer* g_server = nullptr;

void HandleSignal(int) {
  // Async-signal-safe: Shutdown is one eventfd write.
  if (g_server != nullptr) g_server->Shutdown();
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ParseArgs(argc, argv);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.status() << "\n";
    return 1;
  }
  ServeArgs args = std::move(parsed).value();

  std::optional<jury::api::PoolPlanContext> context;
  if (!args.pool_snapshot.empty()) {
    auto planned = jury::api::PoolPlanContext::PlanFromSnapshot(
        args.pool_snapshot);
    if (!planned.ok()) {
      std::cerr << "error: " << planned.status() << "\n";
      return 1;
    }
    context.emplace(std::move(planned).value());
  } else {
    std::vector<Worker> workers;
    if (!args.csv_path.empty()) {
      auto loaded = jury::LoadWorkersCsv(args.csv_path);
      if (!loaded.ok()) {
        std::cerr << "error: " << loaded.status() << "\n";
        return 1;
      }
      workers = std::move(loaded).value();
    } else {
      std::cout << "(no CSV given; serving the paper's Figure-1 pool)\n";
      workers = {{"A", 0.77, 9.0}, {"B", 0.70, 5.0}, {"C", 0.80, 6.0},
                 {"D", 0.65, 7.0}, {"E", 0.60, 5.0}, {"F", 0.60, 2.0},
                 {"G", 0.75, 3.0}};
    }
    jury::api::PlanOptions plan_options;
    plan_options.assume_validated = true;
    auto planned =
        jury::api::PoolPlanContext::Plan(std::move(workers), plan_options);
    if (!planned.ok()) {
      std::cerr << "error: " << planned.status() << "\n";
      return 1;
    }
    context.emplace(std::move(planned).value());
  }

  jury::serve::JuryServer server(&*context, args.options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "error: " << started << "\n";
    return 1;
  }

  g_server = &server;
  std::signal(SIGTERM, &HandleSignal);
  std::signal(SIGINT, &HandleSignal);

  std::cout << "listening on " << args.options.host << ":" << server.port()
            << std::endl;  // flushed: scripts block on this line

  const Status ran = server.Run();
  g_server = nullptr;
  if (!ran.ok()) {
    std::cerr << "error: " << ran << "\n";
    return 1;
  }
  std::cout << "drained; shutting down\n";
  return 0;
}
