// Online stopping: buy votes one at a time and stop when the Bayesian
// posterior is confident enough — the CDAS-style online counterpart (§8)
// built on the same model, contrasted against a fixed pre-selected jury.
//
// Build & run:  ./build/examples/online_stopping

#include <iostream>

#include "core/sequential.h"
#include "crowd/pool.h"
#include "crowd/vote_sim.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace jury;
  Rng rng(77);

  crowd::PoolConfig config;
  config.num_workers = 20;
  const int num_tasks = 2000;

  Table table({"confidence target", "accuracy", "avg votes", "avg spent"});
  for (double threshold : {0.80, 0.90, 0.95, 0.99}) {
    OnlineStats votes_used, spent;
    int correct = 0;
    for (int t = 0; t < num_tasks; ++t) {
      Rng pool_rng = rng.Fork();
      const auto stream = crowd::GeneratePool(config, &pool_rng).value();
      const int truth = crowd::SampleTruth(0.5, &rng);

      SequentialConfig policy;
      policy.confidence_threshold = threshold;
      policy.budget = 2.0;
      const auto outcome =
          RunSequentialPolicy(
              stream,
              [&](const Worker& w, std::size_t) {
                return crowd::SimulateVote(w.quality, truth, &rng);
              },
              policy)
              .value();
      correct += (outcome.answer == truth);
      votes_used.Add(static_cast<double>(outcome.votes_used));
      spent.Add(outcome.spent);
    }
    table.AddRow({Format(threshold, 2),
                  FormatPercent(static_cast<double>(correct) / num_tasks),
                  Format(votes_used.mean(), 2), Format(spent.mean(), 3)});
  }
  std::cout << table.ToString()
            << "\nThe posterior IS Bayesian Voting's decision statistic, so "
               "the stopping threshold is a per-task correctness guarantee: "
               "accuracy tracks the confidence target while easy tasks stop "
               "after a few votes.\n";
  return 0;
}
