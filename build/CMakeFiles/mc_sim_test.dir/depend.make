# Empty dependencies file for mc_sim_test.
# This may be replaced when dependencies are built.
