file(REMOVE_RECURSE
  "CMakeFiles/mc_sim_test.dir/tests/mc_sim_test.cc.o"
  "CMakeFiles/mc_sim_test.dir/tests/mc_sim_test.cc.o.d"
  "mc_sim_test"
  "mc_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
