file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_jq.dir/bench/bench_micro_jq.cc.o"
  "CMakeFiles/bench_micro_jq.dir/bench/bench_micro_jq.cc.o.d"
  "bench_micro_jq"
  "bench_micro_jq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_jq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
