# Empty dependencies file for bench_micro_jq.
# This may be replaced when dependencies are built.
