# Empty dependencies file for incremental_eval_test.
# This may be replaced when dependencies are built.
