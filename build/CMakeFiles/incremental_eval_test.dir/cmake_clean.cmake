file(REMOVE_RECURSE
  "CMakeFiles/incremental_eval_test.dir/tests/incremental_eval_test.cc.o"
  "CMakeFiles/incremental_eval_test.dir/tests/incremental_eval_test.cc.o.d"
  "incremental_eval_test"
  "incremental_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
