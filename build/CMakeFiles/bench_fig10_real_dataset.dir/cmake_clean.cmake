file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_real_dataset.dir/bench/bench_fig10_real_dataset.cc.o"
  "CMakeFiles/bench_fig10_real_dataset.dir/bench/bench_fig10_real_dataset.cc.o.d"
  "bench_fig10_real_dataset"
  "bench_fig10_real_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_real_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
