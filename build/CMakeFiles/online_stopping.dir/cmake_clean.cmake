file(REMOVE_RECURSE
  "CMakeFiles/online_stopping.dir/examples/online_stopping.cc.o"
  "CMakeFiles/online_stopping.dir/examples/online_stopping.cc.o.d"
  "online_stopping"
  "online_stopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_stopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
