# Empty dependencies file for online_stopping.
# This may be replaced when dependencies are built.
