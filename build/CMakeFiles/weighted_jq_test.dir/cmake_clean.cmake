file(REMOVE_RECURSE
  "CMakeFiles/weighted_jq_test.dir/tests/weighted_jq_test.cc.o"
  "CMakeFiles/weighted_jq_test.dir/tests/weighted_jq_test.cc.o.d"
  "weighted_jq_test"
  "weighted_jq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_jq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
