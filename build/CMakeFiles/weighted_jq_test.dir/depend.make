# Empty dependencies file for weighted_jq_test.
# This may be replaced when dependencies are built.
