file(REMOVE_RECURSE
  "CMakeFiles/sequential_test.dir/tests/sequential_test.cc.o"
  "CMakeFiles/sequential_test.dir/tests/sequential_test.cc.o.d"
  "sequential_test"
  "sequential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
