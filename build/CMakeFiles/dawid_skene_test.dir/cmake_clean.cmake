file(REMOVE_RECURSE
  "CMakeFiles/dawid_skene_test.dir/tests/dawid_skene_test.cc.o"
  "CMakeFiles/dawid_skene_test.dir/tests/dawid_skene_test.cc.o.d"
  "dawid_skene_test"
  "dawid_skene_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dawid_skene_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
