# Empty dependencies file for dawid_skene_test.
# This may be replaced when dependencies are built.
