file(REMOVE_RECURSE
  "CMakeFiles/monotonicity_test.dir/tests/monotonicity_test.cc.o"
  "CMakeFiles/monotonicity_test.dir/tests/monotonicity_test.cc.o.d"
  "monotonicity_test"
  "monotonicity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monotonicity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
