# Empty dependencies file for monotonicity_test.
# This may be replaced when dependencies are built.
