# Empty dependencies file for sentiment_campaign.
# This may be replaced when dependencies are built.
