file(REMOVE_RECURSE
  "CMakeFiles/sentiment_campaign.dir/examples/sentiment_campaign.cc.o"
  "CMakeFiles/sentiment_campaign.dir/examples/sentiment_campaign.cc.o.d"
  "sentiment_campaign"
  "sentiment_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sentiment_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
