# Empty dependencies file for bench_table3_sa_error_ranges.
# This may be replaced when dependencies are built.
