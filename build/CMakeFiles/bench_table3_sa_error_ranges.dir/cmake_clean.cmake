file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sa_error_ranges.dir/bench/bench_table3_sa_error_ranges.cc.o"
  "CMakeFiles/bench_table3_sa_error_ranges.dir/bench/bench_table3_sa_error_ranges.cc.o.d"
  "bench_table3_sa_error_ranges"
  "bench_table3_sa_error_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sa_error_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
