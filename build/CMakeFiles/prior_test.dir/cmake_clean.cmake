file(REMOVE_RECURSE
  "CMakeFiles/prior_test.dir/tests/prior_test.cc.o"
  "CMakeFiles/prior_test.dir/tests/prior_test.cc.o.d"
  "prior_test"
  "prior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
