# Empty dependencies file for prior_test.
# This may be replaced when dependencies are built.
