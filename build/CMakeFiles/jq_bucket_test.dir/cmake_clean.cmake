file(REMOVE_RECURSE
  "CMakeFiles/jq_bucket_test.dir/tests/jq_bucket_test.cc.o"
  "CMakeFiles/jq_bucket_test.dir/tests/jq_bucket_test.cc.o.d"
  "jq_bucket_test"
  "jq_bucket_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jq_bucket_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
