# Empty dependencies file for jq_bucket_test.
# This may be replaced when dependencies are built.
