file(REMOVE_RECURSE
  "CMakeFiles/poisson_binomial_test.dir/tests/poisson_binomial_test.cc.o"
  "CMakeFiles/poisson_binomial_test.dir/tests/poisson_binomial_test.cc.o.d"
  "poisson_binomial_test"
  "poisson_binomial_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson_binomial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
