# Empty dependencies file for poisson_binomial_test.
# This may be replaced when dependencies are built.
