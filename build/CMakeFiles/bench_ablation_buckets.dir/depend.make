# Empty dependencies file for bench_ablation_buckets.
# This may be replaced when dependencies are built.
