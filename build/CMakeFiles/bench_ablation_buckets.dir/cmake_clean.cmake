file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_buckets.dir/bench/bench_ablation_buckets.cc.o"
  "CMakeFiles/bench_ablation_buckets.dir/bench/bench_ablation_buckets.cc.o.d"
  "bench_ablation_buckets"
  "bench_ablation_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
