file(REMOVE_RECURSE
  "CMakeFiles/jq_closed_form_test.dir/tests/jq_closed_form_test.cc.o"
  "CMakeFiles/jq_closed_form_test.dir/tests/jq_closed_form_test.cc.o.d"
  "jq_closed_form_test"
  "jq_closed_form_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jq_closed_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
