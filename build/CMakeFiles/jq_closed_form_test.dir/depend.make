# Empty dependencies file for jq_closed_form_test.
# This may be replaced when dependencies are built.
