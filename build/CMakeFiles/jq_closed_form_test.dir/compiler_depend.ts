# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for jq_closed_form_test.
