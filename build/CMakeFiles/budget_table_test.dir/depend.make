# Empty dependencies file for budget_table_test.
# This may be replaced when dependencies are built.
