file(REMOVE_RECURSE
  "CMakeFiles/budget_table_test.dir/tests/budget_table_test.cc.o"
  "CMakeFiles/budget_table_test.dir/tests/budget_table_test.cc.o.d"
  "budget_table_test"
  "budget_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
