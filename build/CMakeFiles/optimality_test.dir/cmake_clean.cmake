file(REMOVE_RECURSE
  "CMakeFiles/optimality_test.dir/tests/optimality_test.cc.o"
  "CMakeFiles/optimality_test.dir/tests/optimality_test.cc.o.d"
  "optimality_test"
  "optimality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
