# Empty dependencies file for jury_cli.
# This may be replaced when dependencies are built.
