file(REMOVE_RECURSE
  "CMakeFiles/jury_cli.dir/examples/jury_cli.cc.o"
  "CMakeFiles/jury_cli.dir/examples/jury_cli.cc.o.d"
  "jury_cli"
  "jury_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jury_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
