# Empty dependencies file for exact_map_test.
# This may be replaced when dependencies are built.
