file(REMOVE_RECURSE
  "CMakeFiles/exact_map_test.dir/tests/exact_map_test.cc.o"
  "CMakeFiles/exact_map_test.dir/tests/exact_map_test.cc.o.d"
  "exact_map_test"
  "exact_map_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
