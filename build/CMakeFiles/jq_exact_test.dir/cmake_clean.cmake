file(REMOVE_RECURSE
  "CMakeFiles/jq_exact_test.dir/tests/jq_exact_test.cc.o"
  "CMakeFiles/jq_exact_test.dir/tests/jq_exact_test.cc.o.d"
  "jq_exact_test"
  "jq_exact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jq_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
