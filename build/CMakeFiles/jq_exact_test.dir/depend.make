# Empty dependencies file for jq_exact_test.
# This may be replaced when dependencies are built.
