# Empty dependencies file for bench_fig9_jq_computation.
# This may be replaced when dependencies are built.
