file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_jq_computation.dir/bench/bench_fig9_jq_computation.cc.o"
  "CMakeFiles/bench_fig9_jq_computation.dir/bench/bench_fig9_jq_computation.cc.o.d"
  "bench_fig9_jq_computation"
  "bench_fig9_jq_computation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_jq_computation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
