file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_budget_quality.dir/bench/bench_fig1_budget_quality.cc.o"
  "CMakeFiles/bench_fig1_budget_quality.dir/bench/bench_fig1_budget_quality.cc.o.d"
  "bench_fig1_budget_quality"
  "bench_fig1_budget_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_budget_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
