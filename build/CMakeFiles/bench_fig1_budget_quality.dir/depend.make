# Empty dependencies file for bench_fig1_budget_quality.
# This may be replaced when dependencies are built.
