# Empty dependencies file for juryopt.
# This may be replaced when dependencies are built.
