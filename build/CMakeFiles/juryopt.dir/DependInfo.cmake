
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cc" "CMakeFiles/juryopt.dir/src/core/allocation.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/core/allocation.cc.o.d"
  "/root/repo/src/core/annealing.cc" "CMakeFiles/juryopt.dir/src/core/annealing.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/core/annealing.cc.o.d"
  "/root/repo/src/core/branch_bound.cc" "CMakeFiles/juryopt.dir/src/core/branch_bound.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/core/branch_bound.cc.o.d"
  "/root/repo/src/core/budget_table.cc" "CMakeFiles/juryopt.dir/src/core/budget_table.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/core/budget_table.cc.o.d"
  "/root/repo/src/core/exhaustive.cc" "CMakeFiles/juryopt.dir/src/core/exhaustive.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/core/exhaustive.cc.o.d"
  "/root/repo/src/core/greedy.cc" "CMakeFiles/juryopt.dir/src/core/greedy.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/core/greedy.cc.o.d"
  "/root/repo/src/core/jsp.cc" "CMakeFiles/juryopt.dir/src/core/jsp.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/core/jsp.cc.o.d"
  "/root/repo/src/core/mvjs.cc" "CMakeFiles/juryopt.dir/src/core/mvjs.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/core/mvjs.cc.o.d"
  "/root/repo/src/core/objective.cc" "CMakeFiles/juryopt.dir/src/core/objective.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/core/objective.cc.o.d"
  "/root/repo/src/core/optjs.cc" "CMakeFiles/juryopt.dir/src/core/optjs.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/core/optjs.cc.o.d"
  "/root/repo/src/core/sequential.cc" "CMakeFiles/juryopt.dir/src/core/sequential.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/core/sequential.cc.o.d"
  "/root/repo/src/crowd/amt.cc" "CMakeFiles/juryopt.dir/src/crowd/amt.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/crowd/amt.cc.o.d"
  "/root/repo/src/crowd/dawid_skene.cc" "CMakeFiles/juryopt.dir/src/crowd/dawid_skene.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/crowd/dawid_skene.cc.o.d"
  "/root/repo/src/crowd/estimators.cc" "CMakeFiles/juryopt.dir/src/crowd/estimators.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/crowd/estimators.cc.o.d"
  "/root/repo/src/crowd/mc_sim.cc" "CMakeFiles/juryopt.dir/src/crowd/mc_sim.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/crowd/mc_sim.cc.o.d"
  "/root/repo/src/crowd/pool.cc" "CMakeFiles/juryopt.dir/src/crowd/pool.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/crowd/pool.cc.o.d"
  "/root/repo/src/crowd/sentiment.cc" "CMakeFiles/juryopt.dir/src/crowd/sentiment.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/crowd/sentiment.cc.o.d"
  "/root/repo/src/crowd/vote_sim.cc" "CMakeFiles/juryopt.dir/src/crowd/vote_sim.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/crowd/vote_sim.cc.o.d"
  "/root/repo/src/jq/bucket.cc" "CMakeFiles/juryopt.dir/src/jq/bucket.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/jq/bucket.cc.o.d"
  "/root/repo/src/jq/closed_form.cc" "CMakeFiles/juryopt.dir/src/jq/closed_form.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/jq/closed_form.cc.o.d"
  "/root/repo/src/jq/exact.cc" "CMakeFiles/juryopt.dir/src/jq/exact.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/jq/exact.cc.o.d"
  "/root/repo/src/jq/exact_map.cc" "CMakeFiles/juryopt.dir/src/jq/exact_map.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/jq/exact_map.cc.o.d"
  "/root/repo/src/jq/monte_carlo.cc" "CMakeFiles/juryopt.dir/src/jq/monte_carlo.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/jq/monte_carlo.cc.o.d"
  "/root/repo/src/jq/prior_transform.cc" "CMakeFiles/juryopt.dir/src/jq/prior_transform.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/jq/prior_transform.cc.o.d"
  "/root/repo/src/jq/weighted.cc" "CMakeFiles/juryopt.dir/src/jq/weighted.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/jq/weighted.cc.o.d"
  "/root/repo/src/model/jury.cc" "CMakeFiles/juryopt.dir/src/model/jury.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/model/jury.cc.o.d"
  "/root/repo/src/model/prior.cc" "CMakeFiles/juryopt.dir/src/model/prior.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/model/prior.cc.o.d"
  "/root/repo/src/model/votes.cc" "CMakeFiles/juryopt.dir/src/model/votes.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/model/votes.cc.o.d"
  "/root/repo/src/model/worker.cc" "CMakeFiles/juryopt.dir/src/model/worker.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/model/worker.cc.o.d"
  "/root/repo/src/model/worker_io.cc" "CMakeFiles/juryopt.dir/src/model/worker_io.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/model/worker_io.cc.o.d"
  "/root/repo/src/multiclass/bv.cc" "CMakeFiles/juryopt.dir/src/multiclass/bv.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/multiclass/bv.cc.o.d"
  "/root/repo/src/multiclass/confusion.cc" "CMakeFiles/juryopt.dir/src/multiclass/confusion.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/multiclass/confusion.cc.o.d"
  "/root/repo/src/multiclass/dawid_skene.cc" "CMakeFiles/juryopt.dir/src/multiclass/dawid_skene.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/multiclass/dawid_skene.cc.o.d"
  "/root/repo/src/multiclass/decompose.cc" "CMakeFiles/juryopt.dir/src/multiclass/decompose.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/multiclass/decompose.cc.o.d"
  "/root/repo/src/multiclass/jq_bucket.cc" "CMakeFiles/juryopt.dir/src/multiclass/jq_bucket.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/multiclass/jq_bucket.cc.o.d"
  "/root/repo/src/multiclass/jq_exact.cc" "CMakeFiles/juryopt.dir/src/multiclass/jq_exact.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/multiclass/jq_exact.cc.o.d"
  "/root/repo/src/multiclass/jsp.cc" "CMakeFiles/juryopt.dir/src/multiclass/jsp.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/multiclass/jsp.cc.o.d"
  "/root/repo/src/multiclass/model.cc" "CMakeFiles/juryopt.dir/src/multiclass/model.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/multiclass/model.cc.o.d"
  "/root/repo/src/multiclass/multilabel.cc" "CMakeFiles/juryopt.dir/src/multiclass/multilabel.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/multiclass/multilabel.cc.o.d"
  "/root/repo/src/multiclass/spammer.cc" "CMakeFiles/juryopt.dir/src/multiclass/spammer.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/multiclass/spammer.cc.o.d"
  "/root/repo/src/strategy/bayesian.cc" "CMakeFiles/juryopt.dir/src/strategy/bayesian.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/strategy/bayesian.cc.o.d"
  "/root/repo/src/strategy/half_voting.cc" "CMakeFiles/juryopt.dir/src/strategy/half_voting.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/strategy/half_voting.cc.o.d"
  "/root/repo/src/strategy/majority.cc" "CMakeFiles/juryopt.dir/src/strategy/majority.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/strategy/majority.cc.o.d"
  "/root/repo/src/strategy/random_ballot.cc" "CMakeFiles/juryopt.dir/src/strategy/random_ballot.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/strategy/random_ballot.cc.o.d"
  "/root/repo/src/strategy/randomized_majority.cc" "CMakeFiles/juryopt.dir/src/strategy/randomized_majority.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/strategy/randomized_majority.cc.o.d"
  "/root/repo/src/strategy/registry.cc" "CMakeFiles/juryopt.dir/src/strategy/registry.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/strategy/registry.cc.o.d"
  "/root/repo/src/strategy/triadic.cc" "CMakeFiles/juryopt.dir/src/strategy/triadic.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/strategy/triadic.cc.o.d"
  "/root/repo/src/strategy/voting_strategy.cc" "CMakeFiles/juryopt.dir/src/strategy/voting_strategy.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/strategy/voting_strategy.cc.o.d"
  "/root/repo/src/strategy/weighted_majority.cc" "CMakeFiles/juryopt.dir/src/strategy/weighted_majority.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/strategy/weighted_majority.cc.o.d"
  "/root/repo/src/util/csv.cc" "CMakeFiles/juryopt.dir/src/util/csv.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/util/csv.cc.o.d"
  "/root/repo/src/util/env.cc" "CMakeFiles/juryopt.dir/src/util/env.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/util/env.cc.o.d"
  "/root/repo/src/util/histogram.cc" "CMakeFiles/juryopt.dir/src/util/histogram.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/util/histogram.cc.o.d"
  "/root/repo/src/util/math.cc" "CMakeFiles/juryopt.dir/src/util/math.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/util/math.cc.o.d"
  "/root/repo/src/util/poisson_binomial.cc" "CMakeFiles/juryopt.dir/src/util/poisson_binomial.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/util/poisson_binomial.cc.o.d"
  "/root/repo/src/util/rng.cc" "CMakeFiles/juryopt.dir/src/util/rng.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/juryopt.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/juryopt.dir/src/util/status.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/util/status.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/juryopt.dir/src/util/table.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/util/table.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/juryopt.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/juryopt.dir/src/util/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
