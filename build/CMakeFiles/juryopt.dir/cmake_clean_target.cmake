file(REMOVE_RECURSE
  "libjuryopt.a"
)
