file(REMOVE_RECURSE
  "CMakeFiles/mc_dawid_skene_test.dir/tests/mc_dawid_skene_test.cc.o"
  "CMakeFiles/mc_dawid_skene_test.dir/tests/mc_dawid_skene_test.cc.o.d"
  "mc_dawid_skene_test"
  "mc_dawid_skene_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_dawid_skene_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
