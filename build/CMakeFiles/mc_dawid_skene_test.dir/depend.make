# Empty dependencies file for mc_dawid_skene_test.
# This may be replaced when dependencies are built.
