file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_miscalibration.dir/bench/bench_ablation_miscalibration.cc.o"
  "CMakeFiles/bench_ablation_miscalibration.dir/bench/bench_ablation_miscalibration.cc.o.d"
  "bench_ablation_miscalibration"
  "bench_ablation_miscalibration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_miscalibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
