# Empty dependencies file for bench_ablation_miscalibration.
# This may be replaced when dependencies are built.
