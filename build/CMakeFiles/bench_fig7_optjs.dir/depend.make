# Empty dependencies file for bench_fig7_optjs.
# This may be replaced when dependencies are built.
