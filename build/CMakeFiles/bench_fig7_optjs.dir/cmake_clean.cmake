file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_optjs.dir/bench/bench_fig7_optjs.cc.o"
  "CMakeFiles/bench_fig7_optjs.dir/bench/bench_fig7_optjs.cc.o.d"
  "bench_fig7_optjs"
  "bench_fig7_optjs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_optjs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
