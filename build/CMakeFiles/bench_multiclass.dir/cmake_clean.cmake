file(REMOVE_RECURSE
  "CMakeFiles/bench_multiclass.dir/bench/bench_multiclass.cc.o"
  "CMakeFiles/bench_multiclass.dir/bench/bench_multiclass.cc.o.d"
  "bench_multiclass"
  "bench_multiclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
