file(REMOVE_RECURSE
  "CMakeFiles/contract_test.dir/tests/contract_test.cc.o"
  "CMakeFiles/contract_test.dir/tests/contract_test.cc.o.d"
  "contract_test"
  "contract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
