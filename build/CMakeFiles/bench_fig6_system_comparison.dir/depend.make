# Empty dependencies file for bench_fig6_system_comparison.
# This may be replaced when dependencies are built.
