file(REMOVE_RECURSE
  "CMakeFiles/branch_bound_test.dir/tests/branch_bound_test.cc.o"
  "CMakeFiles/branch_bound_test.dir/tests/branch_bound_test.cc.o.d"
  "branch_bound_test"
  "branch_bound_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
