# Empty dependencies file for bench_fig8_strategies.
# This may be replaced when dependencies are built.
