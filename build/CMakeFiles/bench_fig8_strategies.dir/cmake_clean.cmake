file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_strategies.dir/bench/bench_fig8_strategies.cc.o"
  "CMakeFiles/bench_fig8_strategies.dir/bench/bench_fig8_strategies.cc.o.d"
  "bench_fig8_strategies"
  "bench_fig8_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
