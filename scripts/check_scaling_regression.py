#!/usr/bin/env python3
"""CI gate for the parallel layer's perf trajectory.

Usage: check_scaling_regression.py BASELINE.json FRESH.json

Compares a fresh bench JSON artifact against its committed baseline and
fails on regressions. Three artifact families share this gate:

`bench_ablation_solvers` artifacts (BENCH_scaling.json) carry
`thread_scaling` / `budget_table_nested` / `scheduler` sections;
`bench_pool` artifacts (BENCH_pool.json) carry `pool_build` /
`snapshot` / `frontier` sections; `bench_serving` artifacts
(BENCH_serving.json) carry a `serving` section whose rows (keyed by
client concurrency) defend `warm_speedup_vs_cold` — the result cache
must keep answering repeated requests orders of magnitude faster than
cold solves. Sections the baseline does not record are never demanded
of the fresh run, so one script gates all families without inventing
cross-family requirements.

For `bench_ablation_solvers` artifacts the gate fails when:

  * a solver's 4-thread speedup drops below 80% of the baseline's — but
    only for rows whose baseline actually scaled (speedup > 1.1): rows
    at or under that cutoff are indistinguishable from measurement noise
    (a 1-core baseline records ~1.0x +- a few percent) and make no
    scaling claim to defend, so they cannot flake the gate;
  * the nested budget-table improvement at 4 threads drops below 80% of a
    baseline improvement that exceeded 1.1 (same rationale);
  * the fresh run's scheduler counters show no nested regions at all —
    the budget-table rows must actually fan their inner solves out.

For `bench_pool` artifacts the gate defends two single-thread-valid
ratios, keyed by pool size `n` and filtered by the same >1.1x claim
cutoff:

  * `frontier` rows: `speedup_vs_full_scan` — the candidate-frontier
    pre-selection must keep beating the full O(N)-per-round scan;
  * `snapshot` rows: `speedup_vs_csv` — planning from an mmap-ed
    snapshot must keep beating a CSV re-parse.

Both ratios compare two code paths inside one process on one core, so
unlike the thread-scaling gates they are NOT skipped for single-core
baselines — a 1-core recorder measures them fine. A baseline row whose
`n` is missing from the fresh artifact is skipped with a notice rather
than failed: JURY_BENCH_FAST runs legitimately drop the million-worker
rows.

The 20% tolerance absorbs runner-to-runner noise; real regressions (a
serialized path, a lost nested fan-out) overshoot it by far.

Baselines recorded on a host with a single hardware thread (the JSON's
"host.hardware_threads" field, written by the bench harness) make every
speedup/improvement row unreachable by construction — a 1-core box cannot
scale — so the row gates are skipped wholesale for such baselines; only
the hardware-independent nested-regions counter check remains. Baselines
without a host section (pre-field artifacts) keep the per-row >1.1x
claim filter, which already skipped 1-core noise rows in practice.

Rows pinned to a SIMD dispatch level (a "simd_level" field, e.g. rows
measured under a forced avx512 table) are comparable only between hosts
that can execute that level. The harness records the recording host's
executable tiers as "host.simd_levels"; a pinned row whose level is
missing from either the baseline's or the fresh host's list is skipped —
an AVX-512 row recorded on an AVX-512 box must not fail the gate on a
runner that cannot run the kernel at all (and vice versa). Artifacts
without the field (pre-field baselines) skip the level filter entirely.

Note on baseline provenance: a baseline recorded on a single-core box has
speedups ~1.0, so the speedup checks are mostly skipped until the
baseline is regenerated on multi-core hardware (commit the CI artifact
as BENCH_scaling.json). The nested-regions counter check is hardware-
independent and catches total serialization either way.
"""

import json
import sys

TOLERANCE = 0.8
# Baseline rows at or below this are noise, not a scaling claim.
MIN_BASELINE_CLAIM = 1.1
THREADS = 4


def fail(msg: str) -> None:
    print(f"SCALING REGRESSION: {msg}")
    sys.exit(1)


def rows_at(report: dict, section: str, threads: int) -> dict:
    out = {}
    for row in report.get(section, []):
        if row.get("threads") == threads:
            key = row.get("solver") or row.get("workload")
            if row.get("simd_level"):
                key = f"{key}@{row['simd_level']}"
            out[key] = row
    return out


def host_simd_levels(report: dict):
    """The recording host's executable kernel tiers, or None when the
    artifact predates the field (then no level filtering is possible)."""
    levels = report.get("host", {}).get("simd_levels")
    return set(levels) if levels is not None else None


def level_unavailable(row: dict, baseline: dict, fresh: dict) -> bool:
    """True when the row is pinned to a SIMD level that either host's
    recorded tier list lacks — such rows make no cross-host claim."""
    level = row.get("simd_level")
    if not level:
        return False
    for report in (baseline, fresh):
        levels = host_simd_levels(report)
        if levels is not None and level not in levels:
            return True
    return False


def check_pool_ratios(baseline: dict, fresh: dict, section: str,
                      metric: str, key_field: str = "n") -> int:
    """Gates a single-process ratio section (rows keyed by `key_field`):
    the fresh ratio must hold >= TOLERANCE of every baseline row that
    makes a claim (> MIN_BASELINE_CLAIM). Single-core-valid — both sides
    of the ratio run in one process on however many cores exist — so no
    hardware_threads skip applies. Fresh artifacts may omit rows
    (JURY_BENCH_FAST drops large-n pool rows); those are skipped, not
    failed. Rows recorded at the reduced fast-run workload scale
    (`fast_run: true`, written by bench_serving) are excluded on both
    sides — a fast row's ratio is measured on a different request mix
    and warm-pass count, so it makes no claim comparable to a full row's."""
    base_rows = {row.get(key_field): row for row in baseline.get(section, [])
                 if not row.get("fast_run")}
    fresh_rows = {row.get(key_field): row for row in fresh.get(section, [])
                  if not row.get("fast_run")}
    checked = 0
    for key in sorted(k for k in base_rows if k is not None):
        base_value = base_rows[key].get(metric, 0.0)
        label = f"{section}[{key_field}={key}].{metric}"
        if base_value <= MIN_BASELINE_CLAIM:
            print(f"skip   {label}: baseline {base_value:.2f} makes no claim")
            continue
        if key not in fresh_rows:
            print(f"skip   {label}: row absent from the fresh artifact "
                  "(fast run?)")
            continue
        fresh_value = fresh_rows[key].get(metric, 0.0)
        floor = TOLERANCE * base_value
        status = "ok" if fresh_value >= floor else "FAIL"
        print(f"{status:6} {label}: {fresh_value:.2f}x vs baseline "
              f"{base_value:.2f}x (floor {floor:.2f}x)")
        if fresh_value < floor:
            fail(f"{label} {fresh_value:.2f}x fell below {floor:.2f}x")
        checked += 1
    return checked


def main() -> None:
    if len(sys.argv) != 3:
        fail("usage: check_scaling_regression.py BASELINE.json FRESH.json")
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        fresh = json.load(f)

    baseline_threads = baseline.get("host", {}).get("hardware_threads")
    single_core_baseline = (baseline_threads is not None
                            and baseline_threads <= 1)
    if single_core_baseline:
        print("baseline host reports 1 hardware thread: speedup and "
              "nested-improvement gates skipped (rows unreachable by "
              "construction on a 1-core recorder)")

    base_rows = rows_at(baseline, "thread_scaling", THREADS)
    fresh_rows = rows_at(fresh, "thread_scaling", THREADS)
    if baseline.get("thread_scaling") and not fresh_rows:
        # Only a baseline of the same artifact family can demand the
        # section; a pool baseline has no thread_scaling rows at all.
        fail(f"fresh report has no thread_scaling rows at {THREADS} threads")
    if single_core_baseline:
        base_rows = {}
    checked = 0
    for solver, base in base_rows.items():
        if level_unavailable(base, baseline, fresh):
            print(f"skip   {solver}: pinned SIMD level unavailable on the "
                  "baseline or fresh host")
            continue
        base_speedup = base.get("speedup_vs_1_thread", 0.0)
        if base_speedup <= MIN_BASELINE_CLAIM:
            print(f"skip   {solver}: baseline speedup {base_speedup:.2f} "
                  "makes no scaling claim")
            continue
        if solver not in fresh_rows:
            fail(f"solver '{solver}' missing from the fresh report")
        fresh_speedup = fresh_rows[solver].get("speedup_vs_1_thread", 0.0)
        floor = TOLERANCE * base_speedup
        status = "ok" if fresh_speedup >= floor else "FAIL"
        print(f"{status:6} {solver}: {fresh_speedup:.2f}x vs baseline "
              f"{base_speedup:.2f}x (floor {floor:.2f}x)")
        if fresh_speedup < floor:
            fail(f"'{solver}' 4-thread speedup {fresh_speedup:.2f}x fell "
                 f"below {floor:.2f}x")
        checked += 1

    base_nested = ({} if single_core_baseline
                   else rows_at(baseline, "budget_table_nested", THREADS))
    fresh_nested = rows_at(fresh, "budget_table_nested", THREADS)
    for workload, base in base_nested.items():
        base_improvement = base.get("improvement_vs_fixed_pool", 0.0)
        if base_improvement <= MIN_BASELINE_CLAIM:
            print(f"skip   {workload}: baseline improvement "
                  f"{base_improvement:.2f} makes no claim")
            continue
        if workload not in fresh_nested:
            fail(f"nested workload '{workload}' missing from fresh report")
        fresh_improvement = fresh_nested[workload].get(
            "improvement_vs_fixed_pool", 0.0)
        floor = TOLERANCE * base_improvement
        status = "ok" if fresh_improvement >= floor else "FAIL"
        print(f"{status:6} {workload}: {fresh_improvement:.2f}x vs baseline "
              f"{base_improvement:.2f}x (floor {floor:.2f}x)")
        if fresh_improvement < floor:
            fail(f"nested improvement {fresh_improvement:.2f}x fell below "
                 f"{floor:.2f}x")

    nested_regions = 0
    if baseline.get("budget_table_nested") or baseline.get("scheduler"):
        scheduler = fresh.get("scheduler", {})
        nested_regions = scheduler.get("nested_regions", 0)
        print(f"scheduler counters: {scheduler}")
        if nested_regions < 1:
            fail("no nested regions recorded — budget-table rows did not "
                 "fan out their inner solves")

    checked += check_pool_ratios(baseline, fresh, "frontier",
                                 "speedup_vs_full_scan")
    checked += check_pool_ratios(baseline, fresh, "snapshot",
                                 "speedup_vs_csv")
    # `bench_serving` artifacts (BENCH_serving.json): the epoch-keyed
    # result cache must keep repeated requests far cheaper than cold
    # solves. Warm-vs-cold is a two-code-path ratio inside one process,
    # so it is single-core-valid like the pool ratios; rows are keyed by
    # closed-loop client concurrency.
    checked += check_pool_ratios(baseline, fresh, "serving",
                                 "warm_speedup_vs_cold",
                                 key_field="concurrency")

    print(f"scaling gate passed ({checked} rows checked, "
          f"{nested_regions} nested regions observed)")


if __name__ == "__main__":
    main()
