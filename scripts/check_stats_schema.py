#!/usr/bin/env python3
"""Checks a stats-registry JSON export against the checked-in manifest.

The stats registry (src/util/stats_registry.h) registers every
instrument at static initialization, so the *schema* of a `--stats`
export — which counters and gauges exist, not their values — is a
process-invariant. This gate pins that schema to
tests/stats_manifest.json: adding, renaming, or dropping an instrument
without updating the manifest fails CI, which is exactly the review
hook the observability surface needs (dashboards and downstream parsers
key on these names).

Usage:
    check_stats_schema.py MANIFEST [EXPORT]

MANIFEST is the checked-in schema (tests/stats_manifest.json). EXPORT is
a file holding the registry JSON (`{"counters":{...},"gauges":{...}}`);
with no EXPORT, the document is read from stdin, so the canonical CI
invocation is:

    jury_cli --stats --list-solvers | tail -n 1 | \
        scripts/check_stats_schema.py tests/stats_manifest.json
"""

import json
import sys


def fail(message: str) -> None:
    print(f"check_stats_schema: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv: list) -> None:
    if len(argv) not in (2, 3):
        fail(f"usage: {argv[0]} MANIFEST [EXPORT]")

    with open(argv[1], encoding="utf-8") as f:
        manifest = json.load(f)
    if len(argv) == 3:
        with open(argv[2], encoding="utf-8") as f:
            export_text = f.read()
    else:
        export_text = sys.stdin.read()

    try:
        export = json.loads(export_text)
    except json.JSONDecodeError as error:
        fail(f"export is not valid JSON: {error}")

    if sorted(export) != ["counters", "gauges"]:
        fail(
            "export must have exactly the keys 'counters' and 'gauges', "
            f"got {sorted(export)}"
        )

    ok = True
    for kind in ("counters", "gauges"):
        expected = set(manifest.get(kind, []))
        actual = set(export[kind])
        for name in sorted(actual - expected):
            print(
                f"check_stats_schema: unexpected {kind[:-1]} {name!r} — "
                "add it to tests/stats_manifest.json",
                file=sys.stderr,
            )
            ok = False
        for name in sorted(expected - actual):
            print(
                f"check_stats_schema: missing {kind[:-1]} {name!r} — "
                "registered instruments must not silently disappear",
                file=sys.stderr,
            )
            ok = False
        for name, value in export[kind].items():
            if not isinstance(value, int) or value < 0:
                print(
                    f"check_stats_schema: {kind[:-1]} {name!r} has "
                    f"non-integer value {value!r}",
                    file=sys.stderr,
                )
                ok = False

    if not ok:
        sys.exit(1)
    total = sum(len(export[kind]) for kind in ("counters", "gauges"))
    print(f"check_stats_schema: OK ({total} instruments match the manifest)")


if __name__ == "__main__":
    main(sys.argv)
