#!/usr/bin/env bash
# CLI robustness gate (registered as the `cli_robustness` ctest).
#
# Contract under test: jury_cli must never abort. Malformed flags,
# unreadable or truncated input files, unknown solver names, and bad
# numeric values all exit non-zero with an error on stderr; valid runs
# exit zero; and --stats emits a registry export matching the checked-in
# schema manifest (scripts/check_stats_schema.py).
#
# With a third argument (the jury_serve binary) the same contract is
# enforced over HTTP: malformed request bodies, unknown solvers,
# oversized JSON, and every checked-in malformed-JSON corpus document
# get structured {"error":...} responses, and no request bytes kill the
# serving process — it still answers /healthz afterwards and drains
# cleanly on SIGTERM with exit 0.
#
# Usage: cli_robustness_test.sh <jury_cli-binary> <repo-root> [jury_serve-binary]
set -u

CLI="${1:?usage: cli_robustness_test.sh <jury_cli-binary> <repo-root>}"
REPO="${2:?usage: cli_robustness_test.sh <jury_cli-binary> <repo-root>}"
SERVE="${3:-}"

failures=0
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# expect_fail NAME -- ARGS...: the run must exit non-zero (but not via a
# signal — an abort is exactly the bug class this script exists to catch)
# and say something on stderr.
expect_fail() {
  local name="$1"; shift; shift  # drop NAME and "--"
  "$CLI" "$@" >"$tmpdir/out" 2>"$tmpdir/err"
  local status=$?
  if [ "$status" -eq 0 ]; then
    echo "FAIL($name): expected non-zero exit, got 0" >&2
    failures=$((failures + 1))
  elif [ "$status" -ge 128 ]; then
    echo "FAIL($name): killed by signal $((status - 128)) — an abort, not a Status" >&2
    failures=$((failures + 1))
  elif [ ! -s "$tmpdir/err" ]; then
    echo "FAIL($name): non-zero exit but empty stderr" >&2
    failures=$((failures + 1))
  else
    echo "ok($name)"
  fi
}

expect_ok() {
  local name="$1"; shift; shift
  if ! "$CLI" "$@" >"$tmpdir/out" 2>"$tmpdir/err"; then
    echo "FAIL($name): expected exit 0, got $? (stderr: $(cat "$tmpdir/err"))" >&2
    failures=$((failures + 1))
  else
    echo "ok($name)"
  fi
}

# --- flag parsing ---------------------------------------------------------
expect_fail unknown_flag      -- --no-such-flag
expect_fail alpha_garbage     -- --alpha=abc
expect_fail alpha_trailing    -- --alpha=0.5x
expect_fail alpha_empty       -- --alpha=
expect_fail seed_garbage      -- --seed=xyz
expect_fail seed_negative     -- --seed=-3
expect_fail seed_trailing     -- --seed=12three
expect_fail deadline_garbage  -- --deadline-ms=soon
expect_fail deadline_negative -- --deadline-ms=-10
expect_fail work_garbage      -- --max-work-units=lots
expect_fail work_negative     -- --max-work-units=-1

# --- input files ----------------------------------------------------------
expect_fail missing_csv       -- "$tmpdir/does_not_exist.csv" 5
printf 'id,quality,cost\nw0,0.9' > "$tmpdir/truncated.csv"
expect_fail truncated_csv     -- "$tmpdir/truncated.csv" 5
printf 'id,quality,cost\nw0,nan,1.0\n' > "$tmpdir/nan_quality.csv"
expect_fail nan_quality_csv   -- "$tmpdir/nan_quality.csv" 5
printf '\x00\x01\x02 binary garbage \xff\xfe\n' > "$tmpdir/garbage.csv"
expect_fail garbage_csv       -- "$tmpdir/garbage.csv" 5
printf 'id,quality,cost\n' > "$tmpdir/empty_pool.csv"
expect_fail empty_pool_csv    -- "$tmpdir/empty_pool.csv" 5

# --- solver + request validation -----------------------------------------
expect_fail unknown_solver    -- --solver=no-such-solver 5
expect_fail bad_alpha_range   -- --solver=greedy-quality --alpha=1.5 5
expect_fail negative_budget   -- --solver=greedy-quality --alpha=0.4 -5

# --- happy paths stay happy ----------------------------------------------
expect_ok list_solvers        -- --list-solvers
expect_ok demo_pool           -- --solver=greedy-quality --json 5
expect_ok legacy_table        -- 0.4 5 10

# --- anytime limits -------------------------------------------------------
# An expired/capped solve is a *success* with its best-so-far jury — exit 0,
# and under --json the report says so. max_work_units=1 guarantees an early
# stop for the stochastic solvers without racing the wall clock.
expect_ok limited_table       -- --max-work-units=1 0.4 5 10
expect_ok limited_deadline    -- --solver=annealing --deadline-ms=10000 --json 5
if "$CLI" --solver=annealing --max-work-units=1 --json 5 \
     >"$tmpdir/limited_out" 2>"$tmpdir/limited_err"; then
  if grep -q '"terminated_early":true' "$tmpdir/limited_out"; then
    echo "ok(limited_anytime_json)"
  else
    echo "FAIL(limited_anytime_json): no terminated_early in: $(cat "$tmpdir/limited_out")" >&2
    failures=$((failures + 1))
  fi
else
  echo "FAIL(limited_anytime_json): capped solve exited non-zero ($(cat "$tmpdir/limited_err"))" >&2
  failures=$((failures + 1))
fi

# --- --stats schema -------------------------------------------------------
if "$CLI" --solver=greedy-quality --json --stats 5 >"$tmpdir/stats_out" 2>&1; then
  if tail -n 1 "$tmpdir/stats_out" | \
     python3 "$REPO/scripts/check_stats_schema.py" \
             "$REPO/tests/stats_manifest.json"; then
    echo "ok(stats_schema)"
  else
    echo "FAIL(stats_schema): --stats export does not match manifest" >&2
    failures=$((failures + 1))
  fi
else
  echo "FAIL(stats_schema): --stats run exited non-zero" >&2
  failures=$((failures + 1))
fi

# Counters must actually move: a greedy solve performs evaluations.
if tail -n 1 "$tmpdir/stats_out" | grep -q '"api.requests_solved":1'; then
  echo "ok(stats_live)"
else
  echo "FAIL(stats_live): api.requests_solved != 1 in: $(tail -n 1 "$tmpdir/stats_out")" >&2
  failures=$((failures + 1))
fi

# --- serving endpoint (optional third argument) ---------------------------
# The HTTP analogue of the contract above: hostile request bytes get
# structured JSON errors, never a dead process.
if [ -n "$SERVE" ]; then
  # One tolerant raw-socket client: prints the response status line's
  # code on stdout and the response body on stderr. Sending is
  # best-effort — an oversized body may be answered (and the connection
  # reset) before the client finishes writing it, which is exactly the
  # behavior under test.
  cat > "$tmpdir/http_probe.py" <<'EOF'
import socket, sys
host, port, method, path = sys.argv[1], int(sys.argv[2]), sys.argv[3], sys.argv[4]
body = sys.stdin.buffer.read()
s = socket.create_connection((host, port), timeout=10)
head = (f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n")
try:
    s.sendall(head.encode() + body)
except OSError:
    pass  # server may legally reject mid-send (413 + close)
data = b""
try:
    while True:
        chunk = s.recv(65536)
        if not chunk:
            break
        data += chunk
except OSError:
    pass
if not data:
    print("NO_RESPONSE")
    sys.exit(2)
print(data.split(b"\r\n", 1)[0].decode(errors="replace").split()[1])
if b"\r\n\r\n" in data:
    sys.stderr.buffer.write(data.split(b"\r\n\r\n", 1)[1])
EOF

  # expect_http NAME EXPECTED_STATUS METHOD PATH BODY_FILE: the server
  # must answer with the given status; non-200 answers must carry a
  # structured {"error":...} JSON body.
  expect_http() {
    local name="$1" want="$2" method="$3" path="$4" body_file="$5"
    local got
    got="$(python3 "$tmpdir/http_probe.py" 127.0.0.1 "$serve_port" \
           "$method" "$path" < "$body_file" 2>"$tmpdir/http_body")"
    if [ "$got" != "$want" ]; then
      echo "FAIL($name): expected HTTP $want, got '$got'" >&2
      failures=$((failures + 1))
    elif [ "$want" != "200" ] && ! grep -q '"error"' "$tmpdir/http_body"; then
      echo "FAIL($name): HTTP $want body has no structured error: $(cat "$tmpdir/http_body")" >&2
      failures=$((failures + 1))
    else
      echo "ok($name)"
    fi
  }

  "$SERVE" --port=0 >"$tmpdir/serve_out" 2>"$tmpdir/serve_err" &
  serve_pid=$!
  serve_port=""
  for _ in $(seq 1 100); do
    serve_port="$(sed -n 's/.*listening on .*:\([0-9][0-9]*\)$/\1/p' "$tmpdir/serve_out")"
    [ -n "$serve_port" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then break; fi
    sleep 0.05
  done
  if [ -z "$serve_port" ]; then
    echo "FAIL(serve_start): jury_serve never printed its port (stderr: $(cat "$tmpdir/serve_err"))" >&2
    failures=$((failures + 1))
  else
    : > "$tmpdir/empty"
    printf '{"solver":"greedy-quality","budget":9,"alpha":0.4}' > "$tmpdir/good_req"
    printf '{not json at all' > "$tmpdir/malformed"
    printf '{"solver":"no-such-solver","budget":9,"alpha":0.4}' > "$tmpdir/bad_solver"
    # Past the server's 1 MiB body cap: must be shed with 413, not read.
    python3 -c 'import sys; sys.stdout.write("{\"pad\":\"" + "x" * (2 << 20) + "\"}")' \
      > "$tmpdir/oversized"

    expect_http serve_healthz        200 GET  /healthz "$tmpdir/empty"
    expect_http serve_solve_ok       200 POST /solve   "$tmpdir/good_req"
    expect_http serve_malformed_body 400 POST /solve   "$tmpdir/malformed"
    expect_http serve_unknown_solver 404 POST /solve   "$tmpdir/bad_solver"
    expect_http serve_oversized_json 413 POST /solve   "$tmpdir/oversized"
    expect_http serve_wrong_method   405 GET  /solve   "$tmpdir/empty"
    expect_http serve_unknown_route  404 GET  /nope    "$tmpdir/empty"

    # Every checked-in malformed-JSON corpus document must come back as
    # a structured 4xx, and none may take the process down.
    corpus_ok=1
    for doc in "$REPO"/tests/corpus/json/*; do
      [ -f "$doc" ] || continue
      status="$(python3 "$tmpdir/http_probe.py" 127.0.0.1 "$serve_port" \
                POST /solve < "$doc" 2>"$tmpdir/http_body")"
      case "$status" in
        4??) ;;
        200) ;;  # a corpus doc that happens to parse as a valid request
        *) echo "FAIL(serve_corpus): $(basename "$doc") got '$status'" >&2
           failures=$((failures + 1)); corpus_ok=0 ;;
      esac
    done
    [ "$corpus_ok" -eq 1 ] && echo "ok(serve_corpus)"

    # The process survived everything above.
    expect_http serve_still_alive 200 GET /healthz "$tmpdir/empty"

    kill -TERM "$serve_pid"
    serve_status=0
    wait "$serve_pid" || serve_status=$?
    if [ "$serve_status" -ne 0 ]; then
      echo "FAIL(serve_drain): exit $serve_status after SIGTERM (stderr: $(cat "$tmpdir/serve_err"))" >&2
      failures=$((failures + 1))
    else
      echo "ok(serve_drain)"
    fi
  fi
fi

if [ "$failures" -ne 0 ]; then
  echo "cli_robustness: $failures failure(s)" >&2
  exit 1
fi
echo "cli_robustness: all checks passed"
