#!/usr/bin/env bash
# CLI robustness gate (registered as the `cli_robustness` ctest).
#
# Contract under test: jury_cli must never abort. Malformed flags,
# unreadable or truncated input files, unknown solver names, and bad
# numeric values all exit non-zero with an error on stderr; valid runs
# exit zero; and --stats emits a registry export matching the checked-in
# schema manifest (scripts/check_stats_schema.py).
#
# Usage: cli_robustness_test.sh <jury_cli-binary> <repo-root>
set -u

CLI="${1:?usage: cli_robustness_test.sh <jury_cli-binary> <repo-root>}"
REPO="${2:?usage: cli_robustness_test.sh <jury_cli-binary> <repo-root>}"

failures=0
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# expect_fail NAME -- ARGS...: the run must exit non-zero (but not via a
# signal — an abort is exactly the bug class this script exists to catch)
# and say something on stderr.
expect_fail() {
  local name="$1"; shift; shift  # drop NAME and "--"
  "$CLI" "$@" >"$tmpdir/out" 2>"$tmpdir/err"
  local status=$?
  if [ "$status" -eq 0 ]; then
    echo "FAIL($name): expected non-zero exit, got 0" >&2
    failures=$((failures + 1))
  elif [ "$status" -ge 128 ]; then
    echo "FAIL($name): killed by signal $((status - 128)) — an abort, not a Status" >&2
    failures=$((failures + 1))
  elif [ ! -s "$tmpdir/err" ]; then
    echo "FAIL($name): non-zero exit but empty stderr" >&2
    failures=$((failures + 1))
  else
    echo "ok($name)"
  fi
}

expect_ok() {
  local name="$1"; shift; shift
  if ! "$CLI" "$@" >"$tmpdir/out" 2>"$tmpdir/err"; then
    echo "FAIL($name): expected exit 0, got $? (stderr: $(cat "$tmpdir/err"))" >&2
    failures=$((failures + 1))
  else
    echo "ok($name)"
  fi
}

# --- flag parsing ---------------------------------------------------------
expect_fail unknown_flag      -- --no-such-flag
expect_fail alpha_garbage     -- --alpha=abc
expect_fail alpha_trailing    -- --alpha=0.5x
expect_fail alpha_empty       -- --alpha=
expect_fail seed_garbage      -- --seed=xyz
expect_fail seed_negative     -- --seed=-3
expect_fail seed_trailing     -- --seed=12three
expect_fail deadline_garbage  -- --deadline-ms=soon
expect_fail deadline_negative -- --deadline-ms=-10
expect_fail work_garbage      -- --max-work-units=lots
expect_fail work_negative     -- --max-work-units=-1

# --- input files ----------------------------------------------------------
expect_fail missing_csv       -- "$tmpdir/does_not_exist.csv" 5
printf 'id,quality,cost\nw0,0.9' > "$tmpdir/truncated.csv"
expect_fail truncated_csv     -- "$tmpdir/truncated.csv" 5
printf 'id,quality,cost\nw0,nan,1.0\n' > "$tmpdir/nan_quality.csv"
expect_fail nan_quality_csv   -- "$tmpdir/nan_quality.csv" 5
printf '\x00\x01\x02 binary garbage \xff\xfe\n' > "$tmpdir/garbage.csv"
expect_fail garbage_csv       -- "$tmpdir/garbage.csv" 5
printf 'id,quality,cost\n' > "$tmpdir/empty_pool.csv"
expect_fail empty_pool_csv    -- "$tmpdir/empty_pool.csv" 5

# --- solver + request validation -----------------------------------------
expect_fail unknown_solver    -- --solver=no-such-solver 5
expect_fail bad_alpha_range   -- --solver=greedy-quality --alpha=1.5 5
expect_fail negative_budget   -- --solver=greedy-quality --alpha=0.4 -5

# --- happy paths stay happy ----------------------------------------------
expect_ok list_solvers        -- --list-solvers
expect_ok demo_pool           -- --solver=greedy-quality --json 5
expect_ok legacy_table        -- 0.4 5 10

# --- anytime limits -------------------------------------------------------
# An expired/capped solve is a *success* with its best-so-far jury — exit 0,
# and under --json the report says so. max_work_units=1 guarantees an early
# stop for the stochastic solvers without racing the wall clock.
expect_ok limited_table       -- --max-work-units=1 0.4 5 10
expect_ok limited_deadline    -- --solver=annealing --deadline-ms=10000 --json 5
if "$CLI" --solver=annealing --max-work-units=1 --json 5 \
     >"$tmpdir/limited_out" 2>"$tmpdir/limited_err"; then
  if grep -q '"terminated_early":true' "$tmpdir/limited_out"; then
    echo "ok(limited_anytime_json)"
  else
    echo "FAIL(limited_anytime_json): no terminated_early in: $(cat "$tmpdir/limited_out")" >&2
    failures=$((failures + 1))
  fi
else
  echo "FAIL(limited_anytime_json): capped solve exited non-zero ($(cat "$tmpdir/limited_err"))" >&2
  failures=$((failures + 1))
fi

# --- --stats schema -------------------------------------------------------
if "$CLI" --solver=greedy-quality --json --stats 5 >"$tmpdir/stats_out" 2>&1; then
  if tail -n 1 "$tmpdir/stats_out" | \
     python3 "$REPO/scripts/check_stats_schema.py" \
             "$REPO/tests/stats_manifest.json"; then
    echo "ok(stats_schema)"
  else
    echo "FAIL(stats_schema): --stats export does not match manifest" >&2
    failures=$((failures + 1))
  fi
else
  echo "FAIL(stats_schema): --stats run exited non-zero" >&2
  failures=$((failures + 1))
fi

# Counters must actually move: a greedy solve performs evaluations.
if tail -n 1 "$tmpdir/stats_out" | grep -q '"api.requests_solved":1'; then
  echo "ok(stats_live)"
else
  echo "FAIL(stats_live): api.requests_solved != 1 in: $(tail -n 1 "$tmpdir/stats_out")" >&2
  failures=$((failures + 1))
fi

if [ "$failures" -ne 0 ]; then
  echo "cli_robustness: $failures failure(s)" >&2
  exit 1
fi
echo "cli_robustness: all checks passed"
