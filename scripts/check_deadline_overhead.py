#!/usr/bin/env python3
"""Gate the deadline-check overhead of the solve path.

``BM_AnnealingStep/token`` runs the identical annealing workload as
``BM_AnnealingStep/bare`` but with a live (never-firing) cancel token,
so the delta between the two is exactly what every deadline-armed solve
pays: one relaxed flag load per SA step plus a periodic clock probe.
The gate fails if the token variant is more than 2% slower.

Usage: check_deadline_overhead.py BENCH_micro.fresh.json

The input is a google-benchmark ``--benchmark_out`` JSON file. When the
run used ``--benchmark_repetitions``, the ``_median`` aggregate is used
(more robust on noisy CI runners); otherwise the single raw entry.
"""

from __future__ import annotations

import json
import sys

BENCH = "BM_AnnealingStep"
VARIANTS = ("bare", "token")
MAX_RATIO = 1.02  # <2% overhead


def pick_times(benchmarks: list[dict]) -> dict[str, float]:
    """Prefer the median aggregate per variant; fall back to raw entries."""
    medians: dict[str, float] = {}
    raw: dict[str, float] = {}
    for entry in benchmarks:
        name = entry.get("name", "")
        for variant in VARIANTS:
            base = f"{BENCH}/{variant}"
            if name == f"{base}_median":
                medians[variant] = float(entry["real_time"])
            elif name == base and entry.get("run_type", "iteration") != "aggregate":
                # Repeated runs emit several raw entries; keep the minimum.
                raw[variant] = min(raw.get(variant, float("inf")),
                                   float(entry["real_time"]))
    return medians if len(medians) == len(VARIANTS) else raw


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as fh:
        doc = json.load(fh)
    times = pick_times(doc.get("benchmarks", []))
    missing = [v for v in VARIANTS if v not in times]
    if missing:
        print(f"check_deadline_overhead: missing {BENCH} variants: "
              f"{', '.join(missing)}", file=sys.stderr)
        return 1
    ratio = times["token"] / times["bare"]
    print(f"deadline-check overhead: {100.0 * (ratio - 1.0):+.2f}% "
          f"(token {times['token']:.1f} vs bare {times['bare']:.1f}, "
          f"limit +{100.0 * (MAX_RATIO - 1.0):.0f}%)")
    if ratio > MAX_RATIO:
        print("check_deadline_overhead: FAIL — cancel-token polling "
              "regressed the annealing step", file=sys.stderr)
        return 1
    print("check_deadline_overhead: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
